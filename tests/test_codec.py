"""Tests for repro.summaries.codec (binary wire format)."""

import numpy as np
import pytest

from repro.query import EqualsPredicate, Query, RangePredicate
from repro.records import RecordStore, Schema, categorical, numeric
from repro.summaries import (
    BloomFilterSummary,
    HistogramSummary,
    ResourceSummary,
    SummaryConfig,
    ValueSetSummary,
)
from repro.summaries.codec import (
    CodecError,
    decode_attribute,
    decode_bloom,
    decode_histogram,
    decode_summary,
    decode_valueset,
    encode_attribute,
    encode_bloom,
    encode_histogram,
    encode_summary,
    encode_valueset,
)


class TestHistogramCodec:
    @pytest.mark.parametrize("encoding", ["dense", "sparse"])
    def test_roundtrip_exact(self, encoding):
        rng = np.random.default_rng(0)
        h = HistogramSummary.from_values(
            "rate", rng.random(500), 128, encoding=encoding
        )
        out, off = decode_histogram(encode_histogram(h))
        assert out == h
        assert off == len(encode_histogram(h))

    def test_roundtrip_custom_bounds(self):
        h = HistogramSummary.from_values(
            "rate", [500.0], 16, (0.0, 1000.0), encoding="dense"
        )
        out, _ = decode_histogram(encode_histogram(h))
        assert out.lo == 0.0 and out.hi == 1000.0
        assert out.counts[8] == 1

    def test_bitmap_preserves_occupancy(self):
        h = HistogramSummary.from_values(
            "a", [0.11, 0.12, 0.9], 10, encoding="bitmap"
        )
        out, _ = decode_histogram(encode_histogram(h))
        # counts collapse to occupancy, semantics preserved
        assert (out.counts > 0).tolist() == (h.counts > 0).tolist()
        for lo in np.linspace(0, 0.9, 10):
            pred = RangePredicate("a", float(lo), float(lo) + 0.05)
            assert out.may_match(pred) == h.may_match(pred)

    def test_empty_histogram(self):
        h = HistogramSummary("a", 32, encoding="sparse")
        out, _ = decode_histogram(encode_histogram(h))
        assert out.is_empty

    def test_wrong_kind_rejected(self):
        v = encode_valueset(ValueSetSummary("x", ["a"]))
        with pytest.raises(CodecError, match="histogram"):
            decode_histogram(v)


class TestValueSetCodec:
    def test_roundtrip(self):
        s = ValueSetSummary("enc", ["MPEG2", "H264", "日本語"])
        out, off = decode_valueset(encode_valueset(s))
        assert out == s

    def test_empty(self):
        out, _ = decode_valueset(encode_valueset(ValueSetSummary("enc")))
        assert out.is_empty


class TestBloomCodec:
    def test_roundtrip(self):
        f = BloomFilterSummary.from_values(
            "enc", [f"v{i}" for i in range(50)], 512, 3
        )
        out, _ = decode_bloom(encode_bloom(f))
        assert out == f
        assert out.contains("v7") and out.num_hashes == 3

    def test_empty(self):
        out, _ = decode_bloom(encode_bloom(BloomFilterSummary("enc", 64, 2)))
        assert out.is_empty


class TestDispatch:
    def test_encode_decode_any(self):
        for summ in (
            HistogramSummary.from_values("a", [0.5], 8),
            ValueSetSummary("b", ["x"]),
            BloomFilterSummary.from_values("c", ["y"], 64, 2),
        ):
            out, _ = decode_attribute(encode_attribute(summ))
            assert type(out) is type(summ)
            assert out == summ

    def test_truncated(self):
        with pytest.raises(CodecError):
            decode_attribute(b"")

    def test_unknown_kind(self):
        with pytest.raises(CodecError, match="unknown frame"):
            decode_attribute(b"\xff\x00")


class TestSummaryCodec:
    @pytest.fixture
    def schema(self):
        return Schema([numeric("a"), numeric("b"), categorical("c")])

    @pytest.fixture
    def store(self, schema):
        rng = np.random.default_rng(3)
        return RecordStore.from_arrays(
            schema, rng.random((80, 2)), [["x" if i % 3 else "y" for i in range(80)]]
        )

    @pytest.mark.parametrize("encoding", ["dense", "sparse", "bitmap"])
    def test_roundtrip_semantics(self, schema, store, encoding):
        cfg = SummaryConfig(histogram_buckets=64, histogram_encoding=encoding)
        s = ResourceSummary.from_store(store, cfg, created_at=42.0)
        out = decode_summary(encode_summary(s), schema, cfg)
        assert out.created_at == 42.0
        rng = np.random.default_rng(5)
        for _ in range(50):
            lo = rng.random(2) * 0.8
            q = Query.of(
                RangePredicate("a", lo[0], lo[0] + 0.15),
                RangePredicate("b", lo[1], lo[1] + 0.15),
                EqualsPredicate("c", "x" if rng.random() < 0.5 else "z"),
            )
            assert out.may_match(q) == s.may_match(q)

    def test_encoded_size_matches_reality(self, schema, store):
        """The simulator's byte accounting vs the actual frame size.

        encoded_size() models per-attribute payloads with small headers;
        the real frame should be within 15% of the accounted size.
        """
        for encoding in ("dense", "sparse", "bitmap"):
            cfg = SummaryConfig(
                histogram_buckets=512, histogram_encoding=encoding
            )
            s = ResourceSummary.from_store(store, cfg)
            real = len(encode_summary(s))
            accounted = s.encoded_size()
            # within 15% plus a small fixed allowance for frame headers
            assert abs(real - accounted) <= 0.15 * accounted + 64, (
                encoding, real, accounted
            )

    def test_bad_magic(self, schema):
        cfg = SummaryConfig()
        with pytest.raises(CodecError, match="magic"):
            decode_summary(b"nope", schema, cfg)

    def test_missing_attribute_detected(self, schema, store):
        cfg = SummaryConfig(histogram_buckets=16)
        s = ResourceSummary.from_store(store, cfg)
        buf = encode_summary(s)
        bigger = Schema(
            [numeric("a"), numeric("b"), numeric("zz"), categorical("c")]
        )
        with pytest.raises(CodecError, match="missing attributes"):
            decode_summary(buf, bigger, cfg)
