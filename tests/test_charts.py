"""Tests for ASCII charts (repro.experiments.charts)."""

import pytest

from repro.experiments.charts import ascii_chart


ROWS = [
    {"n": 64, "roads": 222.0, "sword": 476.0},
    {"n": 192, "roads": 527.0, "sword": 777.0},
    {"n": 320, "roads": 558.0, "sword": 1079.0},
]


class TestAsciiChart:
    def test_contains_marks_and_legend(self):
        art = ascii_chart(ROWS, "n", ["roads", "sword"], title="fig3")
        assert "fig3" in art
        assert "* roads" in art and "o sword" in art
        plot = "\n".join(art.splitlines()[2:])  # below the legend
        assert "*" in plot and "o" in plot  # marks plotted somewhere

    def test_axis_annotations(self):
        art = ascii_chart(ROWS, "n", ["roads"])
        assert "222" in art  # y min
        assert "558" in art  # y max
        assert "64" in art and "320" in art  # x range

    def test_log_scale(self):
        rows = [{"n": 1, "v": 10.0}, {"n": 2, "v": 1e6}]
        art = ascii_chart(rows, "n", ["v"], log_y=True)
        assert "1e1.0" in art and "1e6.0" in art

    def test_log_scale_rejects_nonpositive(self):
        rows = [{"n": 1, "v": 0.0}]
        with pytest.raises(ValueError, match="positive"):
            ascii_chart(rows, "n", ["v"], log_y=True)

    def test_empty_rows(self):
        assert ascii_chart([], "n", ["v"]) == "(no rows)"

    def test_constant_series(self):
        rows = [{"n": i, "v": 5.0} for i in range(3)]
        art = ascii_chart(rows, "n", ["v"])  # no div-by-zero
        assert "5" in art

    def test_dimensions_respected(self):
        art = ascii_chart(ROWS, "n", ["roads"], width=30, height=8)
        plot_lines = [l for l in art.splitlines() if "│" in l or "┤" in l]
        assert len(plot_lines) == 8
