"""Tests for repro.records.index (sorted-column indexes)."""

import numpy as np
import pytest

from repro.query import EqualsPredicate, Query, RangePredicate
from repro.records import RecordStore, Schema, categorical, numeric
from repro.records.index import IndexedStore, SortedIndex


@pytest.fixture
def values():
    return np.random.default_rng(5).random(500)


class TestSortedIndex:
    def test_count_matches_scan(self, values):
        idx = SortedIndex(values)
        for lo, hi in [(0.1, 0.3), (0.0, 1.0), (0.5, 0.5), (0.9, 0.2)]:
            want = int(((values >= lo) & (values <= hi)).sum())
            assert idx.count_range(lo, hi) == want

    def test_rows_match_scan(self, values):
        idx = SortedIndex(values)
        rows = idx.rows_in_range(0.25, 0.5)
        want = set(np.flatnonzero((values >= 0.25) & (values <= 0.5)))
        assert set(rows.tolist()) == want

    def test_empty(self):
        idx = SortedIndex(np.array([]))
        assert len(idx) == 0
        assert idx.count_range(0, 1) == 0
        assert np.isnan(idx.min_value())

    def test_min_max(self, values):
        idx = SortedIndex(values)
        assert idx.min_value() == values.min()
        assert idx.max_value() == values.max()

    def test_duplicates(self):
        idx = SortedIndex(np.array([0.5, 0.5, 0.5, 0.1]))
        assert idx.count_range(0.5, 0.5) == 3


@pytest.fixture
def mixed():
    schema = Schema([numeric("a"), numeric("b"), categorical("c")])
    rng = np.random.default_rng(7)
    n = 400
    store = RecordStore.from_arrays(
        schema,
        rng.random((n, 2)),
        [rng.choice(["x", "y", "z"], n).tolist()],
    )
    return schema, store


class TestIndexedStore:
    def test_indexes_all_numeric_by_default(self, mixed):
        _, store = mixed
        ix = IndexedStore(store)
        assert ix.indexed_attributes == ["a", "b"]

    def test_rejects_categorical(self, mixed):
        _, store = mixed
        with pytest.raises(ValueError, match="categorical"):
            IndexedStore(store, attributes=["c"])

    def test_match_rows_equal_scan(self, mixed):
        _, store = mixed
        ix = IndexedStore(store)
        rng = np.random.default_rng(9)
        for _ in range(30):
            lo = rng.random(2) * 0.7
            q = Query.of(
                RangePredicate("a", lo[0], lo[0] + 0.25),
                RangePredicate("b", lo[1], lo[1] + 0.4),
                EqualsPredicate("c", rng.choice(["x", "y", "z", "absent"])),
            )
            want = set(np.flatnonzero(q.mask(store)).tolist())
            assert set(ix.match_rows(q).tolist()) == want
            assert ix.match_count(q) == len(want)

    def test_unindexed_query_falls_back(self, mixed):
        _, store = mixed
        ix = IndexedStore(store, attributes=["a"])
        q = Query.of(EqualsPredicate("c", "x"))
        assert ix.candidate_rows(q) is None
        want = q.match_count(store)
        assert ix.match_count(q) == want

    def test_estimated_count_upper_bounds(self, mixed):
        _, store = mixed
        ix = IndexedStore(store)
        q = Query.of(
            RangePredicate("a", 0.1, 0.3), RangePredicate("b", 0.0, 0.2)
        )
        assert ix.estimated_count(q) >= ix.match_count(q)

    def test_rebuild_after_mutation(self, mixed):
        _, store = mixed
        ix = IndexedStore(store)
        q = Query.of(RangePredicate("a", 0.999, 1.0))
        before = ix.match_count(q)
        store.update_numeric(0, "a", 0.9995)
        ix.rebuild()
        assert ix.match_count(q) == before + 1 or before == ix.match_count(q) - 1

    def test_candidate_uses_most_selective_index(self, mixed):
        _, store = mixed
        ix = IndexedStore(store)
        q = Query.of(
            RangePredicate("a", 0.0, 1.0),  # everything
            RangePredicate("b", 0.45, 0.5),  # narrow
        )
        rows = ix.candidate_rows(q)
        narrow = ix.index_for("b").count_range(0.45, 0.5)
        assert rows.size == narrow

    def test_unknown_index_lookup(self, mixed):
        _, store = mixed
        ix = IndexedStore(store, attributes=["a"])
        with pytest.raises(KeyError, match="not indexed"):
            ix.index_for("b")
