"""Tests for repro.sword.system (the DHT baseline)."""

import numpy as np
import pytest

from repro.query import EqualsPredicate, Query, RangePredicate
from repro.sword import SwordConfig, SwordSystem
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)


@pytest.fixture(scope="module")
def workload():
    cfg = WorkloadConfig(num_nodes=48, records_per_node=60, seed=7)
    return cfg, generate_node_stores(cfg)


@pytest.fixture(scope="module")
def system(workload):
    _, stores = workload
    return SwordSystem(
        SwordConfig(num_nodes=48, records_per_node=60, seed=7), stores
    )


class TestConstruction:
    def test_store_count_mismatch(self, workload):
        _, stores = workload
        with pytest.raises(ValueError, match="stores supplied"):
            SwordSystem(SwordConfig(num_nodes=5), stores)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SwordConfig(num_nodes=0)
        with pytest.raises(ValueError):
            SwordConfig(record_interval=0)
        with pytest.raises(ValueError):
            SwordConfig(ring_strategy="psychic")
        with pytest.raises(ValueError):
            SwordConfig(search_seconds_per_record=-1)

    def test_every_record_stored_once_per_ring(self, system, workload):
        _, stores = workload
        total_records = sum(len(s) for s in stores)
        stored = sum(len(system.rows_stored_at(s)) for s in range(48))
        # each server stores rows for exactly one ring; rings partition
        # servers, so total stored = records * 1 per ring... summed over
        # all servers = records (each ring's rows spread over its members)
        # times the number of rings covered by those members = records *
        # r / r = records? No: every ring stores ALL records, and each
        # server belongs to one ring, so the grand total is
        # records * (servers per ring assignment) = total_records * 1
        # per ring * r rings / r = total_records... Verify the direct
        # invariant instead: each ring's members jointly store all rows.
        r = len(system.attributes)
        for ring in range(r):
            members = system.hash.members(ring)
            rows = np.concatenate(
                [system.rows_stored_at(int(m)) for m in members]
            )
            assert len(rows) == total_records
            assert len(np.unique(rows)) == total_records


class TestQueryCorrectness:
    def test_exact_results(self, system, workload):
        wcfg, stores = workload
        reference = merge_stores(stores)
        rng = np.random.default_rng(3)
        for q in generate_queries(wcfg, num_queries=25):
            o = system.execute_query(q, int(rng.integers(0, 48)))
            assert o.total_matches == q.match_count(reference)

    def test_collect_rows(self, system, workload):
        wcfg, stores = workload
        reference = merge_stores(stores)
        q = generate_queries(wcfg, num_queries=5, dimensions=2)[0]
        o = system.execute_query(q, 0, collect_rows=True)
        assert o.matched_rows is not None
        assert len(o.matched_rows) == q.match_count(reference)
        # returned rows actually satisfy the query
        for p in q.range_predicates():
            col = system.matrix[
                o.matched_rows, system.schema.numeric_position(p.attribute)
            ]
            assert ((col >= p.lo) & (col <= p.hi)).all()

    def test_query_without_ranges_rejected(self, system):
        q = Query.of(EqualsPredicate("zzz", "x"))
        with pytest.raises(ValueError, match="range predicate"):
            system.execute_query(q, 0)


class TestRouting:
    def test_segment_is_ring_of_first_attribute(self, system, workload):
        wcfg, _ = workload
        q = generate_queries(wcfg, num_queries=1)[0]
        o = system.execute_query(q, 0)
        ring = system.attributes.index(o.ring_attribute)
        assert all(s % len(system.attributes) == ring for s in o.segment)

    def test_narrowest_strategy(self, workload):
        _, stores = workload
        sys2 = SwordSystem(
            SwordConfig(num_nodes=48, ring_strategy="narrowest", seed=7), stores
        )
        q = Query.of(
            RangePredicate("u0", 0.0, 0.9),
            RangePredicate("u1", 0.4, 0.5),
        )
        o = sys2.execute_query(q, 0)
        assert o.ring_attribute == "u1"

    def test_latency_grows_with_segment(self, system):
        narrow = Query.of(RangePredicate("u0", 0.4, 0.45))
        wide = Query.of(RangePredicate("u0", 0.0, 1.0))
        lat_n = np.mean(
            [system.execute_query(narrow, c).latency for c in range(8)]
        )
        lat_w = np.mean(
            [system.execute_query(wide, c).latency for c in range(8)]
        )
        assert lat_w > lat_n

    def test_query_bytes_proportional_to_messages(self, system, workload):
        wcfg, _ = workload
        q = generate_queries(wcfg, num_queries=1)[0]
        o = system.execute_query(q, 1)
        assert o.query_bytes == o.query_messages * q.size_bytes

    def test_local_scan_time_included(self, workload):
        _, stores = workload
        slow = SwordSystem(
            SwordConfig(num_nodes=48, search_seconds_per_record=1e-3, seed=7),
            stores,
        )
        fast = SwordSystem(
            SwordConfig(num_nodes=48, search_seconds_per_record=0.0, seed=7),
            stores,
        )
        q = Query.of(RangePredicate("u0", 0.0, 1.0))
        assert slow.execute_query(q, 0).latency > fast.execute_query(q, 0).latency


class TestOverheads:
    def test_registration_scales_with_records(self, workload):
        wcfg, stores = workload
        half_stores = [s.select(np.arange(len(s)) < 30) for s in stores]
        full = SwordSystem(SwordConfig(num_nodes=48, seed=7), stores)
        half = SwordSystem(SwordConfig(num_nodes=48, seed=7), half_stores)
        assert full.registration_bytes_per_epoch() == pytest.approx(
            2 * half.registration_bytes_per_epoch(), rel=0.1
        )

    def test_update_overhead_window(self, system):
        per_epoch = system.registration_bytes_per_epoch()
        window = system.update_overhead(system.config.record_interval * 7)
        assert window == per_epoch * 7

    def test_storage_accounting(self, system):
        storage = system.storage_bytes_by_server()
        assert sum(storage.values()) == (
            sum(len(system.rows_stored_at(s)) for s in range(48))
            * system.record_size_bytes
        )
