"""Tests for repro.prototype (backend and response-time model)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSettings,
    build_central,
    build_roads,
    build_workload,
)
from repro.prototype import (
    BackendCostModel,
    CentralResponder,
    RecordBackend,
    RoadsResponder,
    summarize_responses,
)
from repro.query import Query, RangePredicate
from repro.workload import generate_queries, merge_stores


@pytest.fixture(scope="module")
def setting():
    return ExperimentSettings.smoke()


@pytest.fixture(scope="module")
def built(setting):
    wcfg, stores = build_workload(setting, seed=1)
    roads = build_roads(setting, stores, seed=1)
    central = build_central(setting, stores, seed=1)
    return wcfg, stores, roads, central


class TestCostModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            BackendCostModel(per_record_retrieval_seconds=-1)
        with pytest.raises(ValueError):
            BackendCostModel(bandwidth_bytes_per_second=0)

    def test_retrieval_linear_in_matches(self):
        m = BackendCostModel(
            per_record_retrieval_seconds=1e-4, fixed_overhead_seconds=0.0
        )
        assert m.retrieval_seconds(100) == pytest.approx(0.01)
        assert m.retrieval_seconds(0) == 0.0

    def test_transfer(self):
        m = BackendCostModel(bandwidth_bytes_per_second=1e6)
        assert m.transfer_seconds(1_000_000) == pytest.approx(1.0)


class TestRecordBackend:
    def test_search_counts_match_query(self, built):
        _, stores, _, _ = built
        backend = RecordBackend(stores[0])
        q = Query.of(RangePredicate("u0", 0.0, 0.5))
        result = backend.search(q)
        assert result.match_count == q.match_count(stores[0])
        assert result.search_seconds >= 0.0
        assert result.result_bytes == (
            result.match_count * stores[0].schema.record_size_bytes
        )

    def test_server_seconds_dominated_by_retrieval(self, built):
        _, stores, _, _ = built
        cost = BackendCostModel(per_record_retrieval_seconds=1.0)
        backend = RecordBackend(stores[0], cost)
        q = Query.of(RangePredicate("u0", 0.0, 1.0))
        result = backend.search(q)
        assert result.server_seconds >= result.match_count * 1.0


class TestResponders:
    def test_roads_response_counts_all_matches(self, built):
        wcfg, stores, roads, _ = built
        reference = merge_stores(stores)
        responder = RoadsResponder(roads)
        q = generate_queries(wcfg, num_queries=3, dimensions=2)[0]
        out = responder.respond(q, client_node=0)
        assert out.match_count == q.match_count(reference)
        assert out.response_seconds >= out.forwarding_seconds

    def test_central_response_counts_all_matches(self, built):
        wcfg, stores, _, central = built
        reference = merge_stores(stores)
        responder = CentralResponder(central)
        q = generate_queries(wcfg, num_queries=3, dimensions=2)[1]
        out = responder.respond(q, client_node=0)
        assert out.match_count == q.match_count(reference)
        assert out.response_seconds >= out.forwarding_seconds

    def test_central_beats_roads_on_selective_queries(self, built):
        """The Figure 11 low-selectivity regime."""
        wcfg, stores, roads, central = built
        r_resp = RoadsResponder(roads)
        c_resp = CentralResponder(central)
        queries = generate_queries(wcfg, num_queries=8)
        r = np.mean([r_resp.respond(q, 0).response_seconds for q in queries])
        c = np.mean([c_resp.respond(q, 0).response_seconds for q in queries])
        assert c < r

    def test_roads_parallelism_wins_at_high_retrieval_cost(self, built):
        """The Figure 11 high-selectivity regime: crank per-record cost
        so serial retrieval at the repository dominates."""
        wcfg, stores, roads, central = built
        cost = BackendCostModel(per_record_retrieval_seconds=5e-3)
        r_resp = RoadsResponder(roads, cost)
        c_resp = CentralResponder(central, cost)
        # an unselective query matching plenty of records
        q = Query.of(
            RangePredicate("u0", 0.0, 1.0), RangePredicate("u1", 0.0, 1.0)
        )
        r = r_resp.respond(q, 0).response_seconds
        c = c_resp.respond(q, 0).response_seconds
        assert r < c


class TestSummaries:
    def test_summarize_responses(self, built):
        wcfg, _, roads, _ = built
        responder = RoadsResponder(roads)
        outs = [
            responder.respond(q, 0)
            for q in generate_queries(wcfg, num_queries=5)
        ]
        s = summarize_responses(outs)
        assert s["queries"] == 5
        assert s["p90_seconds"] >= s["mean_seconds"] * 0.5

    def test_summarize_empty(self):
        s = summarize_responses([])
        assert s["queries"] == 0 and s["mean_seconds"] == 0.0


class TestSwordResponder:
    def test_counts_match_ground_truth(self, built):
        from repro.prototype import SwordResponder
        from repro.experiments import build_sword

        wcfg, stores, _, _ = built
        import repro.experiments as ex

        setting = ExperimentSettings.smoke()
        sword = build_sword(setting, stores, seed=1)
        responder = SwordResponder(sword)
        reference = merge_stores(stores)
        q = generate_queries(wcfg, num_queries=3, dimensions=2)[0]
        out = responder.respond(q, client_node=0)
        assert out.match_count == q.match_count(reference)
        assert out.response_seconds >= out.forwarding_seconds

    def test_multi_hop_worst_case_exceeds_central(self, built):
        """SWORD's multi-hop routing shows in the tail: when the client
        is far from the segment, its response exceeds the central
        repository's single round trip (a lucky client co-located with
        the segment head can beat it — hence tail, not mean)."""
        from repro.prototype import CentralResponder, SwordResponder
        from repro.experiments import build_sword

        wcfg, stores, _, central = built
        setting = ExperimentSettings.smoke()
        sword = build_sword(setting, stores, seed=1)
        s_resp = SwordResponder(sword)
        c_resp = CentralResponder(central)
        queries = generate_queries(wcfg, num_queries=6)
        clients = range(6)
        s_times = [
            s_resp.respond(q, c).response_seconds
            for q in queries
            for c in clients
        ]
        c_times = [
            c_resp.respond(q, c).response_seconds
            for q in queries
            for c in clients
        ]
        assert np.percentile(s_times, 90) > np.percentile(c_times, 90)


class TestIndexedBackend:
    def test_indexed_counts_equal_scan(self, built):
        wcfg, stores, _, _ = built
        scan = RecordBackend(stores[0], indexed=False)
        idx = RecordBackend(stores[0], indexed=True)
        for q in generate_queries(wcfg, num_queries=10, dimensions=3):
            assert idx.search(q).match_count == scan.search(q).match_count

    def test_indexed_faster_on_large_selective_queries(self):
        """On a big store with a selective range, binary search beats
        the full scan (measured, not modelled)."""
        import numpy as np
        from repro.records import RecordStore, Schema, numeric

        schema = Schema([numeric(f"a{i}") for i in range(8)])
        rng = np.random.default_rng(0)
        store = RecordStore.from_arrays(schema, rng.random((400_000, 8)), [])
        scan = RecordBackend(store, indexed=False)
        idx = RecordBackend(store, indexed=True)
        q = Query.of(RangePredicate("a0", 0.5, 0.5005))
        # warm both paths, then time
        scan.search(q), idx.search(q)
        t_scan = min(scan.search(q).search_seconds for _ in range(3))
        t_idx = min(idx.search(q).search_seconds for _ in range(3))
        assert idx.search(q).match_count == scan.search(q).match_count
        assert t_idx < t_scan

    def test_reindex_after_mutation(self, built):
        _, stores, _, _ = built
        idx = RecordBackend(stores[1], indexed=True)
        q = Query.of(RangePredicate("u0", 0.0, 1.0))
        before = idx.search(q).match_count
        assert before == len(stores[1])
        stores[1].update_numeric(0, "u0", 0.123)
        idx.reindex()
        assert idx.search(q).match_count == before
