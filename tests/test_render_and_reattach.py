"""Tests for tree rendering and guest re-attachment after failures."""

import numpy as np
import pytest

from repro.hierarchy import MaintenanceConfig, Server, build_hierarchy
from repro.hierarchy.render import default_label, render_tree, tree_stats
from repro.query import Query, RangePredicate
from repro.records import RecordStore
from repro.roads import GuestOwner, RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import WorkloadConfig, generate_node_stores, make_schema


class TestRenderTree:
    def make(self):
        from repro.hierarchy import Hierarchy

        h = build_hierarchy(Server(i, max_children=2) for i in range(6))
        return h

    def test_structure_lines(self):
        h = self.make()
        art = render_tree(h)
        lines = art.splitlines()
        assert len(lines) == 6
        assert lines[0].startswith("server 0")
        assert any("└── " in l for l in lines)
        assert any("├── " in l for l in lines)

    def test_custom_label(self):
        h = self.make()
        art = render_tree(h, label=lambda s: f"<{s.server_id}>")
        assert "<0>" in art and "<5>" in art

    def test_default_label_marks_dead(self):
        s = Server(3)
        s.alive = False
        assert "DEAD" in default_label(s)

    def test_default_label_shows_owners(self, unit_store):
        from repro.hierarchy import AttachedOwner

        s = Server(1)
        s.attach_owner(AttachedOwner("acme", unit_store, True))
        assert "acme" in default_label(s)

    def test_tree_stats(self):
        h = self.make()
        stats = tree_stats(h)
        assert stats["servers"] == 6
        assert stats["levels"] == h.levels
        assert stats["leaves"] >= 2
        assert stats["max_leaf_depth"] >= stats["min_leaf_depth"]

    def test_single_node(self):
        from repro.hierarchy import Hierarchy

        h = Hierarchy(Server(0))
        assert render_tree(h).splitlines() == ["server 0"]
        assert tree_stats(h)["leaves"] == 1


class TestGuestReattachment:
    @pytest.fixture
    def federation(self):
        wcfg = WorkloadConfig(num_nodes=16, records_per_node=40, seed=61)
        stores = generate_node_stores(wcfg)
        schema = make_schema(wcfg)
        rng = np.random.default_rng(2)
        cols = rng.random((300, wcfg.num_attributes))
        cols[:, 0] = 0.4 + 0.2 * rng.random(300)
        guest_store = RecordStore.from_arrays(schema, cols, [])
        # Attach the guest to a leaf so failing it doesn't orphan a branch.
        cfg = RoadsConfig(
            num_nodes=16,
            records_per_node=40,
            max_children=3,
            summary=SummaryConfig(histogram_buckets=100),
            seed=61,
        )
        probe = RoadsSystem.build(cfg, stores, refresh=False)
        leaf_id = probe.hierarchy.leaves()[0].server_id
        system = RoadsSystem.build(
            cfg,
            stores,
            guests=[GuestOwner(guest_store, attach_to=leaf_id, owner_id="g")],
        )
        return wcfg, stores, guest_store, system, leaf_id

    def query(self):
        return Query.of(RangePredicate("u0", 0.45, 0.55))

    def test_noop_when_attachment_healthy(self, federation):
        *_, system, leaf_id = federation
        assert system.reattach_orphaned_guests() == 0

    def test_guest_moves_after_attachment_failure(self, federation):
        wcfg, stores, guest_store, system, leaf_id = federation
        proto = system.enable_maintenance(
            MaintenanceConfig(heartbeat_interval=2.0, miss_threshold=3)
        )
        before = system.search(SearchRequest(self.query(), client_node=0)).outcome
        assert any(h.owner_id == "g" for h in before.owner_hits)

        proto.fail(system.hierarchy.get(leaf_id))
        system.sim.run(until=system.sim.now + 30.0)  # detect + heal
        moved = system.reattach_orphaned_guests()
        assert moved == 1
        new_sid = system._guest_attachment["g"]
        assert new_sid != leaf_id
        assert system.hierarchy.get(new_sid).alive
        system.refresh()

        after = system.search(SearchRequest(self.query(), client_node=0)).outcome
        guest_hits = [h for h in after.owner_hits if h.owner_id == "g"]
        assert guest_hits and guest_hits[0].match_count == self.query().match_count(guest_store)

    def test_reattachment_prefers_nearby_server(self, federation):
        *_, system, leaf_id = federation
        proto = system.enable_maintenance()
        proto.fail(system.hierarchy.get(leaf_id))
        system.sim.run(until=system.sim.now + 30.0)
        system.reattach_orphaned_guests()
        owner = system._guest_owners["g"]
        new_sid = system._guest_attachment["g"]
        ds = system.network.delay_space
        alive = [s.server_id for s in system.hierarchy if s.alive]
        best = min(alive, key=lambda sid: ds.latency_ms(owner.node_id, sid))
        assert new_sid == best


class TestMultipleOwnersPerServer:
    def test_colocated_owners_aggregate_and_answer(self):
        """Several owners can share one attachment server (e.g. a hosting
        provider serving multiple small organizations)."""
        wcfg = WorkloadConfig(num_nodes=8, records_per_node=30, seed=71)
        stores = generate_node_stores(wcfg)
        schema = make_schema(wcfg)
        rng = np.random.default_rng(4)
        extra_a = RecordStore.from_arrays(
            schema, rng.random((40, wcfg.num_attributes)), []
        )
        extra_b = RecordStore.from_arrays(
            schema, rng.random((25, wcfg.num_attributes)), []
        )
        system = RoadsSystem.build(
            RoadsConfig(num_nodes=8, records_per_node=30, max_children=3,
                        summary=SummaryConfig(histogram_buckets=50), seed=71),
            stores,
            guests=[
                GuestOwner(extra_a, attach_to=2, owner_id="tenant-a"),
                GuestOwner(extra_b, attach_to=2, owner_id="tenant-b"),
            ],
        )
        assert len(system.hierarchy.get(2).owners) == 3
        q = Query.of(RangePredicate("u0", 0.0, 1.0))
        outcome = system.search(SearchRequest(q, client_node=0)).outcome
        total = sum(len(s) for s in stores) + 65
        assert outcome.total_matches == total
