"""Tests for repro.roads.system and client (the assembled ROADS system)."""

import numpy as np
import pytest

from repro.query import Query, RangePredicate
from repro.roads import DenyAllPolicy, RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)


class TestBuild:
    def test_structure(self, small_roads):
        assert len(small_roads.hierarchy) == 32
        small_roads.hierarchy.check_invariants()
        small_roads.overlay.check_coverage()

    def test_every_node_owns_its_store(self, small_roads):
        for server in small_roads.hierarchy:
            assert len(server.owners) == 1
            owner = server.owners[0]
            assert owner.controls_server
            assert owner.owner_id == f"owner-{server.server_id}"

    def test_store_count_mismatch_rejected(self, small_workload):
        _, stores = small_workload
        cfg = RoadsConfig(num_nodes=10, records_per_node=80)
        with pytest.raises(ValueError, match="stores supplied"):
            RoadsSystem.build(cfg, stores)

    def test_join_order_permutation(self, small_workload):
        _, stores = small_workload
        cfg = RoadsConfig(num_nodes=32, records_per_node=80, seed=5)
        order = list(reversed(range(32)))
        system = RoadsSystem.build(cfg, stores, join_order=order)
        assert system.hierarchy.root.server_id == 31

    def test_bad_join_order_rejected(self, small_workload):
        _, stores = small_workload
        cfg = RoadsConfig(num_nodes=32, records_per_node=80)
        with pytest.raises(ValueError, match="permutation"):
            RoadsSystem.build(cfg, stores, join_order=[0, 0, 1])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RoadsConfig(num_nodes=0)
        with pytest.raises(ValueError):
            RoadsConfig(summary_interval=0)


class TestQueryCompleteness:
    """ROADS must find every record a ground-truth scan finds."""

    def test_no_false_negatives(self, small_roads, small_workload, small_queries):
        _, stores = small_workload
        reference = merge_stores(stores)
        for q in small_queries[:15]:
            outcome = small_roads.search(SearchRequest(q)).outcome
            assert outcome.completed
            assert outcome.total_matches == q.match_count(reference)

    def test_collected_records_match(self, small_roads, small_workload):
        wcfg, stores = small_workload
        reference = merge_stores(stores)
        candidates = generate_queries(wcfg, num_queries=10, dimensions=2)
        q = max(candidates, key=lambda q: q.match_count(reference))
        want = q.match_count(reference)
        assert want > 0
        outcome = small_roads.search(SearchRequest(q, collect_records=True)).outcome
        got = outcome.matched_records()
        assert got is not None and len(got) == want

    def test_start_anywhere_equivalence(self, small_roads, small_queries):
        """Overlay invariant: results identical from any start server."""
        q = small_queries[0]
        counts = {
            small_roads.search(SearchRequest(q, start_server=s, client_node=s)).outcome.total_matches
            for s in (0, 7, 19, 31)
        }
        assert len(counts) == 1

    def test_root_start_without_overlay(self, small_roads, small_queries):
        q = small_queries[1]
        with_overlay = small_roads.search(SearchRequest(q, client_node=3)).outcome
        without = small_roads.search(SearchRequest(q, client_node=3, use_overlay=False)).outcome
        assert without.total_matches == with_overlay.total_matches
        assert without.start_server == small_roads.hierarchy.root.server_id


class TestQueryMetrics:
    def test_latency_measures_last_arrival(self, small_roads, small_queries):
        o = small_roads.search(SearchRequest(small_queries[2], client_node=5)).outcome
        assert o.latency >= 0
        if o.arrivals:
            assert o.latency == max(o.arrivals.values()) - o.started_at

    def test_bytes_grow_with_contacts(self, small_roads, small_queries):
        outs = [small_roads.search(SearchRequest(q)).outcome for q in small_queries[:10]]
        for o in outs:
            assert o.query_bytes >= o.servers_contacted * o.query.size_bytes

    def test_no_duplicate_contacts(self, small_roads, small_queries):
        for q in small_queries[:10]:
            o = small_roads.search(SearchRequest(q)).outcome
            assert len(o.arrivals) == o.servers_contacted


class TestPolicies:
    def test_deny_all_hides_owner(self, small_workload, small_queries):
        wcfg, stores = small_workload
        cfg = RoadsConfig(
            num_nodes=32, records_per_node=80, max_children=4,
            summary=SummaryConfig(histogram_buckets=200), seed=5,
        )
        system = RoadsSystem.build(cfg, stores)
        reference = merge_stores(stores)
        # Low-dimensional queries are unselective enough to always match.
        candidates = generate_queries(wcfg, num_queries=10, dimensions=2)
        q = max(candidates, key=lambda q: q.match_count(reference))
        baseline = system.search(SearchRequest(q)).outcome.total_matches
        assert baseline > 0
        # Deny everything at the owner holding the most matches.
        per_owner = [(i, q.match_count(stores[i])) for i in range(32)]
        worst = max(per_owner, key=lambda t: t[1])
        system.set_policy(f"owner-{worst[0]}", DenyAllPolicy())
        filtered = system.search(SearchRequest(q)).outcome.total_matches
        assert filtered == baseline - worst[1]


class TestUpdates:
    def test_epoch_bytes_positive_and_stable(self, small_roads):
        a = small_roads.update_bytes_per_epoch()
        b = small_roads.update_bytes_per_epoch()
        assert a > 0
        assert a == b  # deterministic given unchanged records

    def test_window_scales_epochs(self, small_roads):
        per_epoch = small_roads.update_bytes_per_epoch()
        window = small_roads.update_overhead(
            small_roads.config.summary_interval * 10
        )
        assert window == per_epoch * 10

    def test_storage_excludes_private_records(self, small_roads):
        storage = small_roads.storage_bytes_by_server()
        # Summaries only: far below the raw record bytes.
        raw = 80 * small_roads.hierarchy.get(0).owners[0].origin.schema.record_size_bytes
        assert all(v >= 0 for v in storage.values())
        total_summaries = sum(storage.values())
        total_raw = raw * 32
        assert total_summaries < total_raw * 32  # sanity ceiling


class TestResilienceIntegration:
    def test_queries_survive_node_failure(self):
        wcfg = WorkloadConfig(num_nodes=24, records_per_node=40, seed=9)
        stores = generate_node_stores(wcfg)
        cfg = RoadsConfig(
            num_nodes=24, records_per_node=40, max_children=3,
            summary=SummaryConfig(histogram_buckets=100), seed=9,
        )
        system = RoadsSystem.build(cfg, stores)
        proto = system.enable_maintenance()
        queries = generate_queries(wcfg, num_queries=10)

        victim = next(
            s for s in system.hierarchy
            if not s.is_root and s.children
        )
        victim_id = victim.server_id
        proto.fail(victim)
        system.sim.run(until=system.sim.now + 60.0)
        system.hierarchy.check_invariants()

        # Re-aggregate and re-replicate after the topology change.
        system.refresh()
        reference = merge_stores(
            [stores[i] for i in range(24) if i != victim_id]
        )
        for q in queries:
            healthy_client = next(
                s.server_id for s in system.hierarchy if s.alive
            )
            o = system.search(SearchRequest(q, client_node=healthy_client)).outcome
            assert o.total_matches == q.match_count(reference)
