"""End-to-end integration tests across systems.

These verify the evaluation's comparative claims at reduced scale: all
three designs answer queries identically (completeness), and the paper's
headline orderings hold (update overhead, query overhead, latency
behaviour, storage).
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSettings,
    build_central,
    build_roads,
    build_sword,
    build_workload,
    trial_queries,
)
from repro.workload import merge_stores
from repro.roads import SearchRequest

SETTINGS = ExperimentSettings(
    num_nodes=64, records_per_node=300, num_queries=40, runs=1, seed=13
)


@pytest.fixture(scope="module")
def systems():
    wcfg, stores = build_workload(SETTINGS, SETTINGS.seed)
    roads = build_roads(SETTINGS, stores, SETTINGS.seed)
    sword = build_sword(SETTINGS, stores, SETTINGS.seed)
    central = build_central(SETTINGS, stores, SETTINGS.seed)
    queries, clients = trial_queries(SETTINGS, wcfg, SETTINGS.seed)
    reference = merge_stores(stores)
    return {
        "stores": stores,
        "roads": roads,
        "sword": sword,
        "central": central,
        "queries": queries,
        "clients": clients,
        "reference": reference,
    }


class TestCrossSystemAgreement:
    def test_all_three_designs_agree_with_ground_truth(self, systems):
        """The core correctness property: every design finds exactly the
        records a global scan finds."""
        ref = systems["reference"]
        for q, c in zip(systems["queries"], systems["clients"]):
            want = q.match_count(ref)
            r = systems["roads"].search(SearchRequest(q, client_node=int(c))).outcome
            s = systems["sword"].execute_query(q, int(c))
            ce = systems["central"].execute_query(q, int(c))
            assert r.total_matches == want, f"ROADS wrong on {q}"
            assert s.total_matches == want, f"SWORD wrong on {q}"
            assert ce.match_count == want, f"central wrong on {q}"


class TestComparativeShapes:
    def test_update_overhead_ordering(self, systems):
        """ROADS is at least an order of magnitude below SWORD, and the
        central repository beats SWORD by ~r·log n (no r-fold replication,
        no multi-hop routing) — the Section IV-B relationships."""
        window = SETTINGS.update_window_seconds
        roads = systems["roads"].update_overhead(window)
        sword = systems["sword"].update_overhead(window)
        central = systems["central"].update_overhead(window)
        assert roads < sword
        assert central < sword
        assert sword / roads > 10  # at least one order of magnitude

    def test_query_overhead_ordering(self, systems):
        roads_bytes, sword_bytes = [], []
        for q, c in zip(systems["queries"][:25], systems["clients"][:25]):
            roads_bytes.append(
                systems["roads"].search(SearchRequest(q, client_node=int(c))).outcome.query_bytes
            )
            sword_bytes.append(systems["sword"].execute_query(q, int(c)).query_bytes)
        assert np.mean(roads_bytes) > np.mean(sword_bytes)

    def test_latency_ordering(self, systems):
        roads_lat, sword_lat = [], []
        for q, c in zip(systems["queries"][:25], systems["clients"][:25]):
            roads_lat.append(
                systems["roads"].search(SearchRequest(q, client_node=int(c))).outcome.latency
            )
            sword_lat.append(systems["sword"].execute_query(q, int(c)).latency)
        assert np.mean(roads_lat) < np.mean(sword_lat)

    def test_voluntary_sharing_only_in_roads(self, systems):
        """ROADS keeps raw records at their owners; SWORD and the central
        repository require exporting them."""
        stores = systems["stores"]
        # SWORD: records stored away from their owner.
        sword = systems["sword"]
        away = 0
        for server in range(SETTINGS.num_nodes):
            rows = sword.rows_stored_at(server)
            away += int((sword.owner_of_row[rows] != server).sum())
        assert away > 0
        # ROADS: every origin store object is the owner's own.
        for i, server in enumerate(systems["roads"].hierarchy.servers()):
            owner = server.owners[0]
            assert owner.origin is stores[server.server_id]


class TestOverlayBenefit:
    def test_overlay_avoids_root_for_local_queries(self, systems):
        """With the overlay, searches need not start at the root; without
        it every query hits the root (the paper's bottleneck argument)."""
        roads = systems["roads"]
        root_id = roads.hierarchy.root.server_id
        hit_root_with, hit_root_without = 0, 0
        for q, c in zip(systems["queries"][:20], systems["clients"][:20]):
            o1 = roads.search(SearchRequest(q, client_node=int(c), use_overlay=True)).outcome
            o2 = roads.search(SearchRequest(q, client_node=int(c), use_overlay=False)).outcome
            hit_root_with += int(root_id in o1.arrivals)
            hit_root_without += int(root_id in o2.arrivals)
        assert hit_root_without == 20
        assert hit_root_with < 20

    def test_overlay_results_match_root_start(self, systems):
        roads = systems["roads"]
        for q, c in zip(systems["queries"][:15], systems["clients"][:15]):
            a = roads.search(SearchRequest(q, client_node=int(c), use_overlay=True)).outcome
            b = roads.search(SearchRequest(q, client_node=int(c), use_overlay=False)).outcome
            assert a.total_matches == b.total_matches
