"""Unit tests for repro.query.selectivity."""

import numpy as np
import pytest

from repro.query import (
    Query,
    RangePredicate,
    calibrate_to_selectivity,
    selectivity,
    selectivity_histogram,
)
from repro.records import RecordStore, Schema, numeric


@pytest.fixture
def big_store():
    schema = Schema([numeric("a"), numeric("b")])
    rng = np.random.default_rng(42)
    return RecordStore.from_arrays(schema, rng.random((5000, 2)), [])


class TestSelectivity:
    def test_uniform_matches_area(self, big_store):
        q = Query.of(RangePredicate("a", 0.0, 0.5))
        assert selectivity(q, big_store) == pytest.approx(0.5, abs=0.03)

    def test_conjunction_multiplies(self, big_store):
        q = Query.of(
            RangePredicate("a", 0.0, 0.5), RangePredicate("b", 0.0, 0.5)
        )
        assert selectivity(q, big_store) == pytest.approx(0.25, abs=0.03)

    def test_empty_store(self):
        schema = Schema([numeric("a")])
        st = RecordStore(schema)
        assert selectivity(Query.of(RangePredicate("a", 0, 1)), st) == 0.0


class TestCalibration:
    @pytest.mark.parametrize("target", [0.01, 0.05, 0.2])
    def test_hits_target(self, big_store, target):
        q = Query.of(
            RangePredicate("a", 0.3, 0.6), RangePredicate("b", 0.2, 0.8)
        )
        cal = calibrate_to_selectivity(q, big_store, target, tolerance=0.3)
        assert cal is not None
        s = selectivity(cal, big_store)
        assert abs(s - target) <= 0.3 * target

    def test_preserves_centers(self, big_store):
        q = Query.of(RangePredicate("a", 0.3, 0.5))
        cal = calibrate_to_selectivity(q, big_store, 0.05, tolerance=0.3)
        p = cal.range_predicates()[0]
        assert (p.lo + p.hi) / 2 == pytest.approx(0.4, abs=0.02)

    def test_invalid_target(self, big_store):
        q = Query.of(RangePredicate("a", 0, 1))
        with pytest.raises(ValueError):
            calibrate_to_selectivity(q, big_store, 0.0)
        with pytest.raises(ValueError):
            calibrate_to_selectivity(q, big_store, 1.5)

    def test_unreachable_target_returns_none(self):
        # A store whose values are all far from the query's center: even
        # the full-width scaled query cannot reach high selectivity if
        # the conjunction never matches.
        schema = Schema([numeric("a"), numeric("b")])
        n = 1000
        vals = np.column_stack(
            [np.full(n, 0.1), np.full(n, 0.9)]
        )
        st = RecordStore.from_arrays(schema, vals, [])
        # narrow ranges around the opposite corners; scaling is clipped
        # to the unit interval so max selectivity is 1.0 eventually —
        # instead target something tiny that bisection cannot isolate
        # (every record identical: selectivity jumps 0 -> 1).
        q = Query.of(
            RangePredicate("a", 0.5, 0.6), RangePredicate("b", 0.2, 0.3)
        )
        out = calibrate_to_selectivity(q, st, 0.001, tolerance=0.5)
        assert out is None


class TestHistogram:
    def test_bins(self, big_store):
        queries = [
            Query.of(RangePredicate("a", 0.0, w)) for w in (0.05, 0.3, 0.9)
        ]
        counts = selectivity_histogram(queries, big_store, bins=[0.1, 0.5])
        assert sum(counts) == 3
        assert counts == [1, 1, 1]
