"""Unit tests for repro.hierarchy.aggregation."""

import numpy as np
import pytest

from repro.hierarchy import (
    AttachedOwner,
    PeriodicAggregation,
    Server,
    aggregate_round,
    build_hierarchy,
    refresh_owner_exports,
)
from repro.records import RecordStore, Schema, numeric
from repro.sim import UPDATE, MetricsCollector, Simulator
from repro.summaries import SummaryConfig


@pytest.fixture
def schema():
    return Schema([numeric("a"), numeric("b")])


def store(schema, n, seed):
    rng = np.random.default_rng(seed)
    return RecordStore.from_arrays(schema, rng.random((n, 2)), [])


@pytest.fixture
def hierarchy(schema):
    """9 servers, degree 2, each owning 10 records."""
    h = build_hierarchy(Server(i, max_children=2) for i in range(9))
    for i in range(9):
        h.get(i).attach_owner(
            AttachedOwner(f"owner-{i}", store(schema, 10, i), controls_server=True)
        )
    return h


CFG = SummaryConfig(histogram_buckets=32)


class TestAggregateRound:
    def test_root_sees_all_records(self, hierarchy):
        aggregate_round(hierarchy, CFG)
        root_summary = hierarchy.root.branch_summary(CFG)
        assert root_summary.attributes["a"].total == 90

    def test_every_parent_has_child_summaries(self, hierarchy):
        aggregate_round(hierarchy, CFG)
        for server in hierarchy:
            for cid in server.child_ids():
                assert cid in server.child_summaries

    def test_intermediate_counts(self, hierarchy):
        aggregate_round(hierarchy, CFG)
        for server in hierarchy:
            branch = server.branch_summary(CFG)
            assert branch.attributes["a"].total == 10 * server.subtree_size()

    def test_message_count_is_one_per_edge(self, hierarchy):
        report = aggregate_round(hierarchy, CFG)
        assert report.messages == len(hierarchy) - 1

    def test_bytes_accounted_in_metrics(self, hierarchy):
        metrics = MetricsCollector()
        report = aggregate_round(hierarchy, CFG, metrics=metrics)
        assert metrics.bytes(UPDATE) == report.total_bytes

    def test_controlling_owner_exports_free(self, hierarchy):
        # All owners control their servers: no summary export traffic.
        report = aggregate_round(hierarchy, CFG)
        assert report.export_bytes == 0

    def test_third_party_owner_pays_export(self, hierarchy, schema):
        hierarchy.get(3).attach_owner(
            AttachedOwner("guest", store(schema, 20, 99), controls_server=False)
        )
        report = aggregate_round(hierarchy, CFG)
        assert report.export_bytes > 0
        guest = [o for o in hierarchy.get(3).owners if o.owner_id == "guest"][0]
        assert guest.summary is not None
        assert guest.summary.attributes["a"].total == 20

    def test_guest_records_visible_at_root(self, hierarchy, schema):
        hierarchy.get(3).attach_owner(
            AttachedOwner("guest", store(schema, 20, 99), controls_server=False)
        )
        aggregate_round(hierarchy, CFG)
        assert hierarchy.root.branch_summary(CFG).attributes["a"].total == 110

    def test_timestamps_applied(self, hierarchy):
        aggregate_round(hierarchy, CFG, now=123.0)
        some_parent = hierarchy.root
        for s in some_parent.child_summaries.values():
            assert s.created_at == 123.0

    def test_refresh_owner_exports_only(self, hierarchy, schema):
        hierarchy.get(1).attach_owner(
            AttachedOwner("guest", store(schema, 5, 50), controls_server=False)
        )
        total = refresh_owner_exports(hierarchy, CFG, now=1.0)
        assert total > 0


class TestPeriodicAggregation:
    def test_rounds_fire(self, hierarchy):
        sim = Simulator()
        agg = PeriodicAggregation(sim, hierarchy, CFG, interval=10.0)
        sim.run(until=35.0)
        assert agg.rounds == 4  # t = 0, 10, 20, 30
        assert agg.last_report is not None
        agg.stop()
        sim.run(until=100.0)
        assert agg.rounds == 4

    def test_soft_state_freshness(self, hierarchy):
        cfg = SummaryConfig(histogram_buckets=32, ttl=15.0)
        sim = Simulator()
        PeriodicAggregation(sim, hierarchy, cfg, interval=10.0)
        sim.run(until=55.0)
        now = sim.now
        for server in hierarchy:
            for s in server.child_summaries.values():
                assert not s.is_expired(now)

    def test_metrics_accumulate(self, hierarchy):
        sim = Simulator()
        metrics = MetricsCollector()
        PeriodicAggregation(sim, hierarchy, CFG, interval=10.0, metrics=metrics)
        sim.run(until=25.0)
        # 3 rounds x 8 edges
        assert metrics.messages(UPDATE) == 24
