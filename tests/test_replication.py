"""Unit tests for repro.overlay.replication."""

import numpy as np
import pytest

from repro.hierarchy import (
    AttachedOwner,
    Server,
    aggregate_round,
    build_hierarchy,
)
from repro.overlay import (
    ReplicationOverlay,
    coverage_ids,
    replication_sources,
)
from repro.records import RecordStore, Schema, numeric
from repro.sim import UPDATE, MetricsCollector
from repro.summaries import SummaryConfig

CFG = SummaryConfig(histogram_buckets=32)


@pytest.fixture
def schema():
    return Schema([numeric("a"), numeric("b")])


@pytest.fixture
def hierarchy(schema):
    """21 servers, degree 4 -> 3 levels; every server owns 5 records."""
    h = build_hierarchy(Server(i, max_children=4) for i in range(21))
    rng = np.random.default_rng(0)
    for i in range(21):
        st = RecordStore.from_arrays(schema, rng.random((5, 2)), [])
        h.get(i).attach_owner(AttachedOwner(f"o{i}", st, True))
    aggregate_round(h, CFG)
    return h


class TestReplicationSources:
    def test_paper_figure2_shape(self):
        """D1 replicates [D2, C1, C2, B1, B2, A] (siblings, ancestors,
        ancestors' siblings)."""
        a = Server(0, max_children=2)
        b1, b2 = Server(1, max_children=2), Server(2, max_children=2)
        c1, c2 = Server(3, max_children=2), Server(4, max_children=2)
        d1, d2 = Server(5, max_children=2), Server(6, max_children=2)
        a.add_child(b1)
        a.add_child(b2)
        b1.add_child(c1)
        b1.add_child(c2)
        c1.add_child(d1)
        c1.add_child(d2)
        ids = [s.server_id for s in replication_sources(d1)]
        assert ids == [6, 3, 4, 1, 2, 0]  # D2, C1, C2, B1, B2, A

    def test_root_has_no_sources(self, hierarchy):
        assert replication_sources(hierarchy.root) == []

    def test_source_count_scales_with_depth(self, hierarchy):
        for server in hierarchy:
            srcs = replication_sources(server)
            # siblings (<= k-1) plus per ancestor (1 + its siblings)
            assert len(srcs) <= server.depth * 4 + 3


class TestCoverage:
    def test_every_server_covers_whole_hierarchy(self, hierarchy):
        all_ids = {s.server_id for s in hierarchy}
        for server in hierarchy:
            assert coverage_ids(server) == all_ids

    def test_check_coverage_passes(self, hierarchy):
        ReplicationOverlay(hierarchy, CFG).check_coverage()


class TestReplicateRound:
    def test_replicas_installed(self, hierarchy):
        overlay = ReplicationOverlay(hierarchy, CFG)
        overlay.replicate_round()
        for server in hierarchy:
            expected = {s.server_id for s in replication_sources(server)}
            assert set(server.replicated_summaries) == expected

    def test_replica_contents_match_branch_summaries(self, hierarchy):
        overlay = ReplicationOverlay(hierarchy, CFG)
        overlay.replicate_round()
        some_leaf = hierarchy.leaves()[0]
        for src_id, summary in some_leaf.replicated_summaries.items():
            src = hierarchy.get(src_id)
            assert (
                summary.attributes["a"].total
                == 5 * src.subtree_size()
            )

    def test_bytes_and_messages_accounted(self, hierarchy):
        overlay = ReplicationOverlay(hierarchy, CFG)
        metrics = MetricsCollector()
        report = overlay.replicate_round(metrics=metrics)
        # one message per replicated branch summary, plus one per
        # ancestor local-owner summary (every server here has owners)
        expected = sum(
            len(replication_sources(s)) + len(s.ancestors())
            for s in hierarchy
        )
        assert report.messages == expected
        assert metrics.bytes(UPDATE) == report.replication_bytes
        assert report.replication_bytes > 0

    def test_ancestor_local_summaries_installed(self, hierarchy):
        overlay = ReplicationOverlay(hierarchy, CFG)
        overlay.replicate_round()
        leaf = hierarchy.leaves()[0]
        assert set(leaf.replicated_local_summaries) == {
            a.server_id for a in leaf.ancestors()
        }
        # Local summaries cover only the ancestor's own owners.
        for aid, summ in leaf.replicated_local_summaries.items():
            assert summ.attributes["a"].total == 5

    def test_round_replaces_previous_state(self, hierarchy):
        overlay = ReplicationOverlay(hierarchy, CFG)
        leaf = hierarchy.leaves()[0]
        leaf.replicated_summaries[999] = next(
            iter(hierarchy.root.child_summaries.values())
        )
        overlay.replicate_round()
        assert 999 not in leaf.replicated_summaries

    def test_per_node_message_counts(self, hierarchy):
        overlay = ReplicationOverlay(hierarchy, CFG)
        counts = overlay.per_node_message_counts()
        assert counts[hierarchy.root.server_id] == 0
        deepest = max(hierarchy, key=lambda s: s.depth)
        assert counts[deepest.server_id] == len(replication_sources(deepest))
