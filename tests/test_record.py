"""Unit tests for repro.records.record."""

import pytest

from repro.records import ResourceRecord, Schema, categorical, numeric


@pytest.fixture
def schema():
    return Schema(
        [numeric("rate", 0, 1000), categorical("type", ("camera", "gps"))]
    )


class TestConstruction:
    def test_basic(self, schema):
        rec = ResourceRecord(schema, {"rate": 100, "type": "camera"})
        assert rec["rate"] == 100.0
        assert rec["type"] == "camera"
        assert len(rec) == 2

    def test_numeric_normalized_to_float(self, schema):
        rec = ResourceRecord(schema, {"rate": 100, "type": "camera"})
        assert isinstance(rec["rate"], float)

    def test_missing_attribute(self, schema):
        with pytest.raises(ValueError, match="missing attributes"):
            ResourceRecord(schema, {"rate": 100})

    def test_extra_attribute(self, schema):
        with pytest.raises(ValueError, match="not in schema"):
            ResourceRecord(
                schema, {"rate": 100, "type": "camera", "oops": 1}
            )

    def test_invalid_value(self, schema):
        with pytest.raises(ValueError, match="outside bounds"):
            ResourceRecord(schema, {"rate": -1, "type": "camera"})
        with pytest.raises(ValueError, match="not in declared categories"):
            ResourceRecord(schema, {"rate": 5, "type": "submarine"})


class TestMappingProtocol:
    def test_iteration(self, schema):
        rec = ResourceRecord(schema, {"rate": 1, "type": "gps"})
        assert set(rec) == {"rate", "type"}
        assert dict(rec) == {"rate": 1.0, "type": "gps"}

    def test_equality(self, schema):
        a = ResourceRecord(schema, {"rate": 1, "type": "gps"})
        b = ResourceRecord(schema, {"rate": 1.0, "type": "gps"})
        c = ResourceRecord(schema, {"rate": 2, "type": "gps"})
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_repr(self, schema):
        rec = ResourceRecord(schema, {"rate": 1, "type": "gps"})
        assert "rate=1.0" in repr(rec)


class TestOwnership:
    def test_owner_default_none(self, schema):
        assert ResourceRecord(schema, {"rate": 1, "type": "gps"}).owner is None

    def test_with_owner(self, schema):
        rec = ResourceRecord(schema, {"rate": 1, "type": "gps"})
        tagged = rec.with_owner("org-a")
        assert tagged.owner == "org-a"
        assert rec.owner is None  # original unchanged

    def test_size_bytes(self, schema):
        rec = ResourceRecord(schema, {"rate": 1, "type": "gps"})
        assert rec.size_bytes == schema.record_size_bytes
