"""The shadow-oracle quality plane (telemetry.quality).

Covers the oracle verdicts (TP/FP/FN/TN over a search's coverage
region), per-summary divergence attribution, the owner-level
false-positive semantics fix, the zero-perturbation tripwire, the
quality gauges in the series sampler, and the precision-SLO breach
path into the flight recorder.
"""

import numpy as np
import pytest

from repro.query.predicate import RangePredicate
from repro.query.query import Query
from repro.roads import (
    RetryPolicy,
    RoadsConfig,
    RoadsSystem,
    SearchRequest,
)
from repro.roads.policy import DenyAllPolicy
from repro.summaries import SummaryConfig
from repro.telemetry import (
    DivergenceAttribution,
    QualityPlane,
    QualityReport,
    Telemetry,
)
from repro.workload import WorkloadConfig, generate_node_stores

SEED = 7
NODES = 24
RECORDS = 40

#: the attribute band the churn tests vacate / fill on ``u0``
BAND = (0.70, 0.78)
LANDING = (0.985, 1.0)


def build_system(telemetry=None, **overrides):
    wcfg = WorkloadConfig(
        num_nodes=NODES, records_per_node=RECORDS, seed=SEED
    )
    stores = generate_node_stores(wcfg)
    cfg = RoadsConfig(
        num_nodes=NODES,
        records_per_node=RECORDS,
        max_children=4,
        summary=SummaryConfig(histogram_buckets=200),
        seed=SEED,
        **overrides,
    )
    return RoadsSystem.build(cfg, stores, telemetry=telemetry), stores


def band_query(lo, hi):
    return Query((RangePredicate("u0", lo, hi),))


def churn_band_to_landing(stores):
    """Move every record with ``u0`` in BAND to the landing band."""
    moved = 0
    for store in stores:
        col = store.numeric_column("u0")
        for row in range(len(store)):
            if BAND[0] <= float(col[row]) <= BAND[1]:
                store.update_numeric(row, "u0", LANDING[0] + 0.005)
                moved += 1
    return moved


class TestOracleBasics:
    def test_detached_system_reports_none(self):
        system, _ = build_system()
        system.refresh()
        result = system.search(SearchRequest(band_query(*BAND)))
        assert result.quality is None
        assert system.quality is None

    def test_attach_and_audit_every_search(self):
        system, _ = build_system()
        system.refresh()
        plane = system.attach_quality()
        assert isinstance(plane, QualityPlane)
        assert system.quality is plane
        result = system.search(SearchRequest(band_query(*BAND)))
        report = result.quality
        assert isinstance(report, QualityReport)
        assert plane.audits == 1
        assert plane.reports[-1] is report
        assert report.entry_mode == "start"
        # Verdicts partition the cover (the entry server may count
        # nowhere when it holds no local match, unreachable are split
        # out explicitly).
        total = len(system.hierarchy.servers())
        counted = report.tp + report.fp + report.fn + report.tn
        assert counted <= total
        assert counted >= total - len(report.unreachable) - 1
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0

    def test_snapshot_keys_and_accumulation(self):
        system, _ = build_system()
        system.refresh()
        plane = system.attach_quality()
        for lo in (0.1, 0.4, 0.7):
            system.search(SearchRequest(band_query(lo, lo + 0.08)))
        snap = plane.snapshot()
        assert snap["audits"] == 3
        assert {
            "tp", "fp", "fn", "tn", "precision", "recall", "fp_rate",
            "divergence_age_mean", "owner_hits", "owner_false_positives",
        } <= set(snap)
        assert snap["tp"] == sum(r.tp for r in plane.reports)
        # per-node counts roll up to the same totals
        for key in ("tp", "fp", "fn", "tn"):
            assert sum(c[key] for c in plane.per_node.values()) == snap[key]


class TestChurnDivergence:
    """Stale summaries after a churn burst: FPs and FNs with full
    per-summary attribution."""

    @pytest.fixture(scope="class")
    def audited(self):
        system, stores = build_system()
        system.refresh()
        plane = system.attach_quality()
        moved = churn_band_to_landing(stores)
        assert moved > 0
        fp_report = system.search(
            SearchRequest(band_query(*BAND))
        ).quality
        fn_report = system.search(
            SearchRequest(band_query(*LANDING))
        ).quality
        return system, plane, fp_report, fn_report

    def test_vacated_band_produces_attributed_fps(self, audited):
        system, _, report, _ = audited
        assert report.fp > 0
        fps = [a for a in report.attributions if a.kind == "fp"]
        assert len(fps) == report.fp
        for a in fps:
            assert a.table in ("child", "replica", "replica_local")
            assert a.holder_id in system.hierarchy
            assert a.holder_level >= 0
            # The summaries exist (refresh ran), so every lie has an age.
            assert a.staleness_age is not None
            assert a.staleness_age >= 0.0
            assert a.dimension
            assert a.reason

    def test_landing_band_produces_attributed_fns(self, audited):
        system, _, _, report = audited
        assert report.fn > 0
        fns = [a for a in report.attributions if a.kind == "fn"]
        assert len(fns) == report.fn
        reasons = {a.reason for a in fns}
        assert reasons <= {
            "stale-divergence", "missing", "expired", "refreshed-since"
        }
        # The stale per-dimension summaries diverge on the queried
        # attribute itself.
        stale = [a for a in fns if a.reason == "stale-divergence"]
        assert stale
        assert all(a.dimension == "u0" for a in stale)

    def test_attribution_complete(self, audited):
        _, _, fp_report, fn_report = audited
        for report in (fp_report, fn_report):
            assert len(report.attributions) == report.fp + report.fn

    def test_divergence_age_mean_tracks_attributions(self, audited):
        _, plane, _, _ = audited
        ages = [
            a.staleness_age
            for r in plane.reports
            for a in r.attributions
            if a.staleness_age is not None
        ]
        assert ages
        assert plane.divergence_age_mean == pytest.approx(
            sum(ages) / len(ages)
        )

    def test_report_round_trips_to_dict(self, audited):
        _, _, report, _ = audited
        doc = report.to_dict()
        assert doc["fp"] == report.fp
        assert doc["precision"] == report.precision
        assert all(
            set(a) == {
                "server_id", "kind", "table", "holder_id",
                "holder_level", "src_id", "staleness_age",
                "dimension", "reason",
            }
            for a in doc["attributions"]
        )


class TestOwnerFalsePositiveSemantics:
    """Satellite fix: policy-filtered empty answers are not summary FPs
    when the oracle can see the raw match."""

    def test_oracle_verdict_unit(self):
        system, _ = build_system()
        plane = QualityPlane(system)
        server = system.hierarchy.servers()[0]
        owner = server.owners[0]
        everything = band_query(0.0, 1.0)
        nothing = band_query(2.0, 3.0)
        # Raw match + empty answer: policy hid it, the summary was right.
        assert plane.owner_false_positive(everything, owner, 0) is False
        # No raw match + empty answer: the summary lied.
        assert plane.owner_false_positive(nothing, owner, 0) is True
        # Any returned record is never a false positive.
        assert plane.owner_false_positive(nothing, owner, 3) is False

    def _deny_all_hits(self, attach_quality):
        system, _ = build_system()
        system.refresh()
        for server in system.hierarchy.servers():
            for owner in server.owners:
                system.policies.set(owner.owner_id, DenyAllPolicy())
        if attach_quality:
            system.attach_quality()
        result = system.search(SearchRequest(band_query(0.0, 1.0)))
        hits = result.outcome.owner_hits
        assert hits and all(h.match_count == 0 for h in hits)
        return hits

    def test_legacy_semantics_when_detached(self):
        # Every answer is empty, so the legacy heuristic calls every
        # contact a false positive — even though raw matches exist.
        hits = self._deny_all_hits(attach_quality=False)
        assert all(h.false_positive for h in hits)

    def test_oracle_semantics_when_attached(self):
        # The oracle sees the raw matches behind the DenyAll filter:
        # the summaries routed correctly, so no owner contact is an FP.
        hits = self._deny_all_hits(attach_quality=True)
        assert not any(h.false_positive for h in hits)


class TestZeroPerturbation:
    """Quality-on and quality-off arms must be byte-identical."""

    def _arm(self, audit):
        from repro.telemetry.profiling import CallPathProfiler

        tel = Telemetry()
        profiler = CallPathProfiler()
        tel.attach_profiler(profiler)
        system, stores = build_system(
            telemetry=tel, loss_rate=0.2, delta_updates=True,
            summary_interval=1.0,
        )
        if audit:
            system.attach_quality()
        system.update_plane.start()
        system.sim.run(until=system.sim.now + 2.0)
        churn_band_to_landing(stores)
        requests = [
            SearchRequest(
                band_query(*(BAND if i % 2 == 0 else LANDING)),
                client_node=i % NODES,
                retry=RetryPolicy(timeout=1.0, retries=1, backoff_base=0.1),
            )
            for i in range(8)
        ]
        batch = system.search_many(
            requests, arrivals=[0.1 * i for i in range(len(requests))]
        )
        latency = sum(r.outcome.latency for r in batch)
        return latency, profiler.document(), system

    def test_latency_and_census_identical(self):
        base_latency, base_doc, _ = self._arm(audit=False)
        audit_latency, audit_doc, system = self._arm(audit=True)
        assert audit_latency == base_latency
        assert (
            audit_doc["census_fingerprint"]
            == base_doc["census_fingerprint"]
        )
        assert system.quality.audits == 8
        # The audit's wall cost is visible as its own profiler frame.
        from repro.telemetry.profiling import flatten_document

        assert "quality.audit" in flatten_document(audit_doc)
        assert "quality.audit" not in flatten_document(base_doc)


class TestSeriesGauges:
    """quality.* gauges ride the series sampler (and the watch verb)."""

    def test_sampler_records_quality_gauges(self):
        from repro.telemetry import SeriesConfig, SeriesSampler

        system, stores = build_system(telemetry=Telemetry())
        system.refresh()
        system.attach_quality()
        sampler = SeriesSampler(
            system, SeriesConfig(interval=0.25, per_server=True)
        ).start()
        churn_band_to_landing(stores)
        for i in range(4):
            system.search(SearchRequest(band_query(*BAND)))
        system.sim.run(until=system.sim.now + 2.0)
        names = {r.name for r in sampler.all_series()}
        assert {
            "quality.audits", "quality.precision", "quality.recall",
            "quality.fp_rate", "quality.divergence_age",
        } <= names
        per_server = {
            r.name for r in sampler.all_series() if r.server is not None
        }
        assert {"quality.fp", "quality.fn"} <= per_server
        ring = next(
            r for r in sampler.all_series()
            if r.name == "quality.audits" and r.server is None
        )
        assert ring.values()[-1] == 4.0

    def test_sampler_skips_quality_when_detached(self):
        from repro.telemetry import SeriesConfig, SeriesSampler

        system, _ = build_system(telemetry=Telemetry())
        sampler = SeriesSampler(system, SeriesConfig(interval=0.25)).start()
        system.sim.run(until=system.sim.now + 1.0)
        assert not any(
            r.name.startswith("quality.") for r in sampler.all_series()
        )


class TestPrecisionSLOBreach:
    """A precision-SLO breach freezes oracle evidence in the bundle."""

    def _breach(self, tmp_path=None):
        from repro.telemetry import (
            FlightRecorder,
            HealthProbe,
            HealthSLO,
        )

        tel = Telemetry()
        system, stores = build_system(telemetry=tel)
        system.refresh()
        system.attach_quality()
        recorder = FlightRecorder(
            tel, dump_dir=tmp_path
        )
        probe = HealthProbe(
            system,
            interval=0.5,
            slo=HealthSLO(min_precision=0.999),
        ).start()
        recorder.bind(probe)
        churn_band_to_landing(stores)
        for _ in range(3):
            system.search(SearchRequest(band_query(*BAND)))
        system.sim.run(until=system.sim.now + 2.0)
        probe.stop()
        return system, probe, recorder

    def test_probe_samples_carry_precision(self):
        system, probe, _ = self._breach()
        assert probe.samples
        assert probe.samples[-1].precision == system.quality.precision
        assert probe.samples[-1].precision < 0.999
        assert "precision" in {c.name for c in probe.breaches}

    def test_bundle_carries_quality_evidence(self):
        system, _, recorder = self._breach()
        assert recorder.bundles
        bundle = recorder.bundles[0]
        assert bundle.quality is not None
        snap = bundle.quality["snapshot"]
        assert snap["fp"] > 0
        last = bundle.quality["last_report"]
        assert last is not None
        assert last["attributions"]
        assert "answer quality" in bundle.format()

    def test_bundle_quality_round_trips(self, tmp_path):
        from repro.telemetry.recorder import PostmortemBundle

        _, _, recorder = self._breach(tmp_path)
        assert recorder.dumped
        import json

        doc = json.loads(recorder.dumped[0].read_text())
        assert doc["quality"]["snapshot"]["fp"] > 0
        back = PostmortemBundle.from_dict(doc)
        assert back.quality == recorder.bundles[0].quality


class TestHealthReportQuality:
    def test_report_judges_worst_precision(self):
        from repro.telemetry import HealthProbe, HealthSLO

        system, stores = build_system(telemetry=Telemetry())
        system.refresh()
        system.attach_quality()
        probe = HealthProbe(
            system, interval=0.5, slo=HealthSLO(min_precision=0.999)
        ).start()
        churn_band_to_landing(stores)
        for _ in range(2):
            system.search(SearchRequest(band_query(*BAND)))
        system.sim.run(until=system.sim.now + 1.5)
        probe.stop()
        report = probe.report(HealthSLO(min_precision=0.999))
        checks = {c.name: c for c in report.checks}
        assert "precision" in checks
        assert not checks["precision"].ok
