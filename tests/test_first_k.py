"""Tests for best-effort early termination (``first_k`` queries)."""

import pytest

from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)


@pytest.fixture(scope="module")
def system_and_query():
    wcfg = WorkloadConfig(num_nodes=32, records_per_node=100, seed=51)
    stores = generate_node_stores(wcfg)
    system = RoadsSystem.build(
        RoadsConfig(
            num_nodes=32,
            records_per_node=100,
            max_children=3,
            summary=SummaryConfig(histogram_buckets=100),
            seed=51,
        ),
        stores,
    )
    reference = merge_stores(stores)
    # Pick an unselective query with plenty of matches across owners.
    queries = generate_queries(wcfg, num_queries=10, dimensions=2)
    query = max(queries, key=lambda q: q.match_count(reference))
    assert query.match_count(reference) >= 50
    return system, query, reference


class TestFirstK:
    def test_reaches_requested_count(self, system_and_query):
        system, query, reference = system_and_query
        k = 10
        outcome = system.search(SearchRequest(query, client_node=0, first_k=k)).outcome
        assert outcome.completed
        assert outcome.total_matches >= k

    def test_contacts_fewer_servers_than_full(self, system_and_query):
        system, query, _ = system_and_query
        full = system.search(SearchRequest(query, client_node=0)).outcome
        partial = system.search(SearchRequest(query, client_node=0, first_k=5)).outcome
        assert partial.servers_contacted <= full.servers_contacted
        assert partial.query_bytes <= full.query_bytes

    def test_results_are_subset_of_truth(self, system_and_query):
        system, query, reference = system_and_query
        outcome = system.search(SearchRequest(query, client_node=0, first_k=8, collect_records=True)).outcome
        got = outcome.matched_records()
        assert got is not None
        # Every returned record genuinely matches.
        assert query.match_count(got) == len(got)
        assert len(got) <= query.match_count(reference)

    def test_unreachable_k_degrades_to_full_search(self, system_and_query):
        system, query, reference = system_and_query
        truth = query.match_count(reference)
        outcome = system.search(SearchRequest(query, client_node=0, first_k=truth * 10)).outcome
        # Cannot satisfy: behaves as the complete search.
        assert outcome.total_matches == truth

    def test_first_k_one_touches_minimum(self, system_and_query):
        system, query, _ = system_and_query
        outcome = system.search(SearchRequest(query, client_node=0, first_k=1)).outcome
        assert outcome.total_matches >= 1
        # The search collapsed early: a small handful of servers.
        full = system.search(SearchRequest(query, client_node=0)).outcome
        assert outcome.servers_contacted < max(3, full.servers_contacted)
