"""Benchmark observatory: profiler, scenarios, artifacts, compare, trajectory."""

import json

import pytest

from repro.bench import (
    BenchArtifact,
    DEFAULT_WALL_TOLERANCE,
    ROOT_SHARE_CEILING,
    SCALES,
    SCENARIOS,
    WallClockProfiler,
    artifact_filename,
    available_scenarios,
    compare_artifacts,
    config_fingerprint,
    format_comparison,
    format_trajectory,
    load_artifact,
    load_trajectory,
    append_trajectory,
    resolve_scale,
    RunPlan,
    run_scenario,
    scale_settings,
    scale_sweeps,
    trajectory_row,
    validate_artifact,
    write_artifact,
)
from repro.experiments.config import ExperimentSettings


@pytest.fixture(scope="module")
def overlay_artifact():
    return run_scenario(RunPlan("overlay", scale="smoke", seed=3))


class TestProfiler:
    def test_section_accumulates(self):
        prof = WallClockProfiler()
        with prof.section("net.send"):
            pass
        with prof.section("net.send"):
            pass
        assert prof.calls("net.send") == 2
        assert prof.seconds("net.send") >= 0.0

    def test_add_and_count(self):
        prof = WallClockProfiler()
        prof.add("sim.dispatch", 0.25, calls=10)
        prof.add("sim.dispatch", 0.25, calls=10)
        prof.count("sim.events", 100)
        assert prof.seconds("sim.dispatch") == pytest.approx(0.5)
        assert prof.calls("sim.dispatch") == 20
        assert prof.counter("sim.events") == 100

    def test_events_per_second(self):
        prof = WallClockProfiler()
        prof.add("sim.dispatch", 2.0)
        prof.count("sim.events", 500)
        assert prof.events_per_second() == pytest.approx(250.0)
        assert prof.events_per_second(events=1000) == pytest.approx(500.0)

    def test_empty_throughput_is_zero(self):
        assert WallClockProfiler().events_per_second() == 0.0

    def test_snapshot_and_reset(self):
        prof = WallClockProfiler()
        prof.add("query.execute", 0.1)
        prof.count("sim.events", 7)
        snap = prof.snapshot()
        assert snap["sections"]["query.execute"]["calls"] == 1
        assert snap["counters"]["sim.events"] == 7
        json.dumps(snap)  # JSON-serialisable
        prof.reset()
        assert prof.snapshot() == {"sections": {}, "counters": {}}


class TestScales:
    def test_resolve_scale_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert resolve_scale() == "quick"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert resolve_scale() == "smoke"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError, match="REPRO_BENCH_SCALE"):
            resolve_scale()

    def test_scale_settings_ordering(self):
        smoke = scale_settings("smoke")
        quick = scale_settings("quick")
        paper = scale_settings("paper")
        assert smoke.num_nodes < quick.num_nodes
        assert quick.num_queries < paper.num_queries
        assert paper.num_nodes == quick.num_nodes  # same structure

    def test_scale_sweeps_have_all_axes(self):
        for scale in SCALES:
            sweeps = scale_sweeps(scale)
            assert {
                "nodes", "dims", "records", "overlap", "degree",
                "selectivity", "queries_per_group",
            } <= set(sweeps)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            scale_settings("huge")
        with pytest.raises(ValueError):
            scale_sweeps("huge")


class TestRunScenario:
    def test_registry_contents(self):
        names = available_scenarios()
        assert "fig3" in names and "table1" in names and "overlay" in names
        for s in ("fig4", "fig5", "fig8", "fig11"):
            assert s in names
        assert set(names) == set(SCENARIOS)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            RunPlan("fig99", scale="smoke")

    def test_overlay_artifact_contents(self, overlay_artifact):
        art = overlay_artifact
        assert art.scenario == "overlay" and art.scale == "smoke"
        assert art.ok, art.shape["failures"]
        assert art.rows  # per-server load rows
        assert art.simulated["root_share_overlay"] < ROOT_SHARE_CEILING
        assert (
            art.simulated["root_share_overlay"]
            < art.simulated["root_share_no_overlay"]
        )
        assert art.metrics["sim.latency_p50"] > 0
        assert art.metrics["wall.events_per_sec"] > 0
        assert art.wall["sections"]["sim.dispatch"]["seconds"] > 0
        assert art.config_fingerprint == config_fingerprint(
            scale_settings("smoke", 3)
        )

    def test_profile_off_leaves_wall_empty(self):
        art = run_scenario(RunPlan("fig8", scale="smoke", seed=2, profile=False))
        assert art.wall == {}
        assert not any(k.startswith("wall.") for k in art.metrics)

    def test_fingerprint_is_stable_and_sensitive(self):
        a = config_fingerprint(ExperimentSettings.smoke())
        b = config_fingerprint(ExperimentSettings.smoke())
        c = config_fingerprint(ExperimentSettings.smoke().with_(seed=9))
        assert a == b
        assert a != c


class TestArtifactIO:
    def test_roundtrip(self, overlay_artifact, tmp_path):
        path = write_artifact(
            overlay_artifact, tmp_path / artifact_filename("overlay")
        )
        assert path.name == "BENCH_overlay.json"
        back = load_artifact(path)
        assert back.metrics == overlay_artifact.metrics
        assert back.config_fingerprint == overlay_artifact.config_fingerprint

    def test_quality_plane_artifact_stem(self):
        assert artifact_filename("quality_plane") == "BENCH_quality.json"

    def test_validate_flags_problems(self, overlay_artifact):
        doc = overlay_artifact.to_dict()
        assert validate_artifact(doc) == []
        bad = dict(doc)
        del bad["metrics"]
        assert any("metrics" in p for p in validate_artifact(bad))
        bad = dict(doc, schema="roads.bench/999")
        assert any("schema" in p for p in validate_artifact(bad))
        bad = dict(doc, metrics={"sim.latency_p50": "fast"})
        assert any("non-numeric" in p for p in validate_artifact(bad))

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError, match="invalid bench artifact"):
            load_artifact(path)


def _with_metrics(art: BenchArtifact, **overrides) -> BenchArtifact:
    doc = art.to_dict()
    doc = json.loads(json.dumps(doc))  # deep copy
    doc["metrics"].update(overrides)
    return BenchArtifact.from_dict(doc)


class TestCompare:
    def test_self_compare_ok(self, overlay_artifact):
        result = compare_artifacts(overlay_artifact, overlay_artifact)
        assert result.ok
        assert result.deltas and not result.failed_deltas()
        assert "[ok]" in format_comparison(result)

    def test_sim_band_is_symmetric(self, overlay_artifact):
        base = overlay_artifact
        slow = _with_metrics(
            base, **{"sim.latency_p95": base.metrics["sim.latency_p95"] * 2}
        )
        fast = _with_metrics(
            base, **{"sim.latency_p95": base.metrics["sim.latency_p95"] * 0.4}
        )
        for current in (slow, fast):
            result = compare_artifacts(current, base)
            assert not result.ok
            assert any(
                d.name == "sim.latency_p95" for d in result.failed_deltas()
            )

    def test_wall_band_is_regression_only(self, overlay_artifact):
        base = overlay_artifact
        factor = 1 + 2 * DEFAULT_WALL_TOLERANCE
        slower = _with_metrics(
            base,
            **{"wall.total_seconds": base.metrics["wall.total_seconds"] * factor},
        )
        faster = _with_metrics(
            base,
            **{"wall.total_seconds": base.metrics["wall.total_seconds"] / factor},
        )
        assert not compare_artifacts(slower, base).ok
        assert compare_artifacts(faster, base).ok  # speedups never fail

    def test_events_per_sec_fails_when_lower(self, overlay_artifact):
        base = overlay_artifact
        worse = _with_metrics(
            base,
            **{"wall.events_per_sec": base.metrics["wall.events_per_sec"] * 0.5},
        )
        result = compare_artifacts(worse, base)
        assert any(
            d.name == "wall.events_per_sec" for d in result.failed_deltas()
        )

    def test_skip_wall(self, overlay_artifact):
        base = overlay_artifact
        slower = _with_metrics(
            base, **{"wall.total_seconds": 1e6}
        )
        assert compare_artifacts(slower, base, include_wall=False).ok

    def test_fingerprint_mismatch_is_hard_failure(self, overlay_artifact):
        doc = json.loads(json.dumps(overlay_artifact.to_dict()))
        doc["config_fingerprint"] = "f" * 16
        other = BenchArtifact.from_dict(doc)
        result = compare_artifacts(other, overlay_artifact)
        assert not result.ok
        assert any("fingerprint" in f for f in result.failures)
        assert not result.deltas  # no metric diff on mismatched configs

    def test_shape_reasserted_on_current_rows(self, overlay_artifact):
        doc = json.loads(json.dumps(overlay_artifact.to_dict()))
        doc["simulated"]["root_share_overlay"] = 0.95
        doc["metrics"]["sim.root_share_overlay"] = 0.95
        broken = BenchArtifact.from_dict(doc)
        result = compare_artifacts(broken, broken)
        assert not result.ok
        assert any("root-load share" in f for f in result.shape_failures)


class TestTrajectory:
    def test_row_has_provenance_and_headline_metrics(self, overlay_artifact):
        row = trajectory_row(overlay_artifact)
        assert row["scenario"] == "overlay"
        assert row["shape_ok"] is True
        assert "sim.latency_p95" in row
        assert "wall.events_per_sec" in row
        assert not any(k.startswith("wall.section.") for k in row)

    def test_append_and_load(self, overlay_artifact, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        append_trajectory(overlay_artifact, path)
        append_trajectory(overlay_artifact, path)
        rows = load_trajectory(path)
        assert len(rows) == 2
        text = format_trajectory(rows)
        assert "overlay" in text and "p95_s" in text

    def test_load_missing_is_empty(self, tmp_path):
        assert load_trajectory(tmp_path / "nope.json") == []

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError, match="trajectory"):
            load_trajectory(path)
