"""Tests for repro.analysis.model (Section IV equations and Table I)."""

import math

import pytest

from repro.analysis import (
    ModelParams,
    central_storage,
    central_update_overhead,
    roads_maintenance_overhead,
    roads_maintenance_per_node,
    roads_storage,
    roads_update_overhead,
    sword_storage,
    sword_update_overhead,
    table1,
    update_overheads,
)


class TestParams:
    def test_defaults_match_paper_example(self):
        p = ModelParams()
        assert (p.r, p.m, p.k, p.L) == (25, 100, 5, 4)
        assert p.t_r / p.t_s == pytest.approx(0.1)
        assert p.summary_size == 2500
        assert p.record_size == 25

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelParams(r=0)
        with pytest.raises(ValueError):
            ModelParams(t_s=0)


class TestUpdateOverheads:
    def test_equation_1(self):
        p = ModelParams()
        expected = p.m * p.r * (p.N + p.k * p.n * math.log2(p.n)) / p.t_s
        assert roads_update_overhead(p) == pytest.approx(expected)

    def test_equation_2(self):
        p = ModelParams()
        expected = p.r**2 * p.K * p.N * math.log2(p.n) / p.t_r
        assert sword_update_overhead(p) == pytest.approx(expected)

    def test_equation_3(self):
        p = ModelParams()
        assert central_update_overhead(p) == pytest.approx(
            p.r * p.K * p.N / p.t_r
        )

    def test_roads_orders_below_sword_at_simulation_scale(self):
        """The headline claim, at the simulation's parameters (320 nodes,
        500 records, 16 attributes, 1000 buckets, t_r/t_s = 0.1)."""
        p = ModelParams(N=320, K=500, r=16, m=1000, n=320, k=8, L=3)
        ratio = sword_update_overhead(p) / roads_update_overhead(p)
        assert 5 <= ratio <= 1000

    def test_roads_far_below_sword_at_table1_scale(self):
        """With Table I's N=1000 owners of 10^4 records each, the gap is
        even wider (the summaries don't grow with the record volume)."""
        p = ModelParams()
        ratio = sword_update_overhead(p) / roads_update_overhead(p)
        assert ratio > 1000

    def test_sword_exceeds_central_by_r_logn(self):
        p = ModelParams()
        ratio = sword_update_overhead(p) / central_update_overhead(p)
        assert ratio == pytest.approx(p.r * math.log2(p.n))

    def test_roads_independent_of_record_count(self):
        a = roads_update_overhead(ModelParams(K=100))
        b = roads_update_overhead(ModelParams(K=1_000_000))
        assert a == b

    def test_sword_linear_in_records(self):
        a = sword_update_overhead(ModelParams(K=100))
        b = sword_update_overhead(ModelParams(K=200))
        assert b == pytest.approx(2 * a)

    def test_update_overheads_dict(self):
        out = update_overheads()
        assert set(out) == {"ROADS", "SWORD", "Central"}


class TestMaintenance:
    def test_per_node_scales_with_level(self):
        p = ModelParams()
        assert roads_maintenance_per_node(p, 0) == 0
        assert roads_maintenance_per_node(p, 3) == p.k**2 * 3

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            roads_maintenance_per_node(ModelParams(), 99)

    def test_equation_4_small(self):
        """A few summaries per second at most (paper: ~150 per t_s)."""
        p = ModelParams(n=5**7, L=7)
        per_ts = roads_maintenance_overhead(p) * p.t_s
        assert per_ts < 500
        assert roads_maintenance_overhead(p) < 10  # messages per second


class TestStorage:
    def test_roads_formula(self):
        p = ModelParams()
        assert roads_storage(p, level=2) == p.m * p.r * p.k * 3
        assert roads_storage(p) == p.m * p.r * p.k * (p.L + 1)

    def test_sword_formula(self):
        p = ModelParams()
        assert sword_storage(p) == pytest.approx(p.r**2 * p.K * p.N / p.n)

    def test_central_formula(self):
        p = ModelParams()
        assert central_storage(p) == p.r * p.K * p.N

    def test_ordering_matches_table1(self):
        t = table1()
        assert t["ROADS"] < t["SWORD"] < t["Central"]
        # ROADS is orders of magnitude below the others
        assert t["SWORD"] / t["ROADS"] > 100

    def test_roads_independent_of_records(self):
        assert roads_storage(ModelParams(K=10)) == roads_storage(
            ModelParams(K=10**7)
        )
