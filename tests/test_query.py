"""Unit tests for repro.query.query."""

import numpy as np
import pytest

from repro.query import EqualsPredicate, Query, RangePredicate


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one predicate"):
            Query(())

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Query.of(RangePredicate("a", 0, 0.5), RangePredicate("a", 0.5, 1))

    def test_of(self):
        q = Query.of(RangePredicate("a", 0, 1), EqualsPredicate("c", "x"))
        assert q.dimensions == 2
        assert q.attributes == ["a", "c"]

    def test_unique_ids(self):
        a = Query.of(RangePredicate("a", 0, 1))
        b = Query.of(RangePredicate("a", 0, 1))
        assert a.query_id != b.query_id

    def test_requester(self):
        q = Query.of(RangePredicate("a", 0, 1), requester="org-1")
        assert q.requester == "org-1"
        q2 = q.with_requester("org-2")
        assert q2.requester == "org-2"
        assert q2.query_id == q.query_id


class TestStructure:
    def test_predicate_on(self):
        q = Query.of(RangePredicate("a", 0, 1), EqualsPredicate("c", "x"))
        assert q.predicate_on("a").attribute == "a"
        assert q.predicate_on("zz") is None

    def test_partition_by_kind(self):
        q = Query.of(RangePredicate("a", 0, 1), EqualsPredicate("c", "x"))
        assert len(q.range_predicates()) == 1
        assert len(q.equals_predicates()) == 1

    def test_str_is_conjunction(self):
        q = Query.of(RangePredicate("a", 0, 1), EqualsPredicate("c", "x"))
        assert " AND " in str(q)

    def test_size_grows_with_dimensions(self):
        q2 = Query.of(*(RangePredicate(f"a{i}", 0, 1) for i in range(2)))
        q8 = Query.of(*(RangePredicate(f"a{i}", 0, 1) for i in range(8)))
        assert q8.size_bytes > q2.size_bytes
        # linear growth: header + 24/dim
        assert q8.size_bytes - q2.size_bytes == 6 * 24


class TestEvaluation:
    def test_mask_conjunction(self, unit_store):
        q = Query.of(
            RangePredicate("a", 0.0, 0.5), RangePredicate("b", 0.5, 1.0)
        )
        mask = q.mask(unit_store)
        a = unit_store.numeric_column("a")
        b = unit_store.numeric_column("b")
        assert np.array_equal(mask, (a <= 0.5) & (b >= 0.5))

    def test_match_count_and_select(self, unit_store):
        q = Query.of(RangePredicate("a", 0.0, 0.3))
        assert q.match_count(unit_store) == len(q.select(unit_store))

    def test_empty_store(self, unit_schema):
        from repro.records import RecordStore

        st = RecordStore(unit_schema)
        q = Query.of(RangePredicate("a", 0, 1))
        assert q.match_count(st) == 0
        assert q.mask(st).shape == (0,)

    def test_matches_record(self, unit_store):
        rec = unit_store.record_at(0)
        q = Query.of(RangePredicate("a", rec["a"], rec["a"]))
        assert q.matches_record(rec)
        q2 = Query.of(RangePredicate("a", rec["a"] + 0.001, 1.0))
        assert not q2.matches_record(rec) or rec["a"] >= rec["a"] + 0.001

    def test_mask_agrees_with_per_record(self, mixed_store):
        q = Query.of(
            RangePredicate("rate", 100, 700),
            EqualsPredicate("type", "camera"),
        )
        mask = q.mask(mixed_store)
        for i in range(len(mixed_store)):
            assert mask[i] == q.matches_record(mixed_store.record_at(i))
