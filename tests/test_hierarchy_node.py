"""Unit tests for repro.hierarchy.node."""

import numpy as np
import pytest

from repro.hierarchy import AttachedOwner, Server
from repro.records import RecordStore, Schema, numeric
from repro.summaries import SummaryConfig


@pytest.fixture
def schema():
    return Schema([numeric("a"), numeric("b")])


def store(schema, n=10, seed=0):
    rng = np.random.default_rng(seed)
    return RecordStore.from_arrays(schema, rng.random((n, 2)), [])


def chain(k):
    """A simple path hierarchy s0 -> s1 -> ... -> s(k-1)."""
    servers = [Server(i) for i in range(k)]
    for parent, child in zip(servers, servers[1:]):
        parent.add_child(child)
    return servers


class TestTreeStructure:
    def test_root_properties(self):
        s = Server(0)
        assert s.is_root and s.is_leaf
        assert s.depth == 0
        assert s.root_path == [0]

    def test_add_child_updates_paths(self):
        a, b, c = chain(3)
        assert c.root_path == [0, 1, 2]
        assert c.depth == 2
        assert b.child_ids() == [2]

    def test_add_duplicate_child_rejected(self):
        a = Server(0)
        b = Server(1)
        a.add_child(b)
        with pytest.raises(ValueError, match="already a child"):
            a.add_child(Server(1))

    def test_loop_rejected(self):
        a, b, c = chain(3)
        with pytest.raises(ValueError, match="loop"):
            c.add_child(a)

    def test_subtree_metrics(self):
        root = Server(0)
        for i in (1, 2):
            root.add_child(Server(i))
        root.children[0].add_child(Server(3))
        assert root.subtree_size() == 4
        assert root.subtree_depth() == 3
        assert root.children[1].subtree_depth() == 1

    def test_branch_stats_maintained(self):
        root = Server(0)
        child = Server(1)
        root.add_child(child)
        child.add_child(Server(2))
        stats = root.branch_stats[1]
        assert stats.depth == 2
        assert stats.descendants == 2

    def test_remove_child(self):
        a, b, c = chain(3)
        removed = a.remove_child(1)
        assert removed is b
        assert b.parent is None
        assert a.children == []
        assert 1 not in a.branch_stats

    def test_remove_unknown_child(self):
        assert Server(0).remove_child(99) is None

    def test_siblings_and_ancestors(self):
        root = Server(0)
        kids = [Server(i) for i in (1, 2, 3)]
        for k in kids:
            root.add_child(k)
        grand = Server(4)
        kids[0].add_child(grand)
        assert {s.server_id for s in kids[0].siblings()} == {2, 3}
        assert [a.server_id for a in grand.ancestors()] == [1, 0]
        assert root.siblings() == []

    def test_willing_to_accept_capacity(self):
        s = Server(0, max_children=1)
        s.add_child(Server(1))
        assert not s.willing_to_accept(2)

    def test_willing_to_accept_loop_avoidance(self):
        a, b, c = chain(3)
        assert not c.willing_to_accept(0)

    def test_max_children_validation(self):
        with pytest.raises(ValueError):
            Server(0, max_children=0)

    def test_iter_subtree_preorder(self):
        root = Server(0)
        c1, c2 = Server(1), Server(2)
        root.add_child(c1)
        root.add_child(c2)
        c1.add_child(Server(3))
        ids = [s.server_id for s in root.iter_subtree()]
        assert ids == [0, 1, 3, 2]


class TestOwners:
    def test_attach_detach(self, schema):
        s = Server(0)
        o = AttachedOwner("org-a", store(schema), controls_server=True)
        s.attach_owner(o)
        assert s.owners == [o]
        with pytest.raises(ValueError, match="already attached"):
            s.attach_owner(o)
        assert s.detach_owner("org-a") is o
        assert s.detach_owner("org-a") is None

    def test_exported_size_controlling_owner(self, schema):
        st = store(schema, 10)
        o = AttachedOwner("org-a", st, controls_server=True)
        assert o.exported_size_bytes == st.size_bytes

    def test_exported_size_summary_owner(self, schema):
        from repro.summaries import ResourceSummary

        st = store(schema, 10)
        cfg = SummaryConfig(histogram_buckets=16)
        summ = ResourceSummary.from_store(st, cfg)
        o = AttachedOwner("org-b", st, controls_server=False, summary=summ)
        assert o.exported_size_bytes == summ.encoded_size()


class TestSummaries:
    def test_local_summary_merges_owners(self, schema):
        cfg = SummaryConfig(histogram_buckets=16)
        s = Server(0)
        s.attach_owner(AttachedOwner("a", store(schema, 5, 1), True))
        s.attach_owner(AttachedOwner("b", store(schema, 7, 2), True))
        local = s.local_summary(cfg)
        assert local.attributes["a"].total == 12

    def test_local_summary_none_when_no_owners(self, schema):
        assert Server(0).local_summary(SummaryConfig()) is None

    def test_branch_summary_includes_children_reports(self, schema):
        from repro.summaries import ResourceSummary

        cfg = SummaryConfig(histogram_buckets=16)
        parent, child = Server(0), Server(1)
        parent.add_child(child)
        parent.attach_owner(AttachedOwner("p", store(schema, 5, 3), True))
        child_summary = ResourceSummary.from_store(store(schema, 9, 4), cfg)
        parent.child_summaries[1] = child_summary
        branch = parent.branch_summary(cfg)
        assert branch.attributes["a"].total == 14

    def test_branch_summary_skips_expired(self, schema):
        from repro.summaries import ResourceSummary

        cfg = SummaryConfig(histogram_buckets=16, ttl=10.0)
        parent, child = Server(0), Server(1)
        parent.add_child(child)
        stale = ResourceSummary.from_store(store(schema, 9, 4), cfg, created_at=0.0)
        parent.child_summaries[1] = stale
        assert parent.branch_summary(cfg, now=100.0) is None

    def test_expire_stale_summaries(self, schema):
        from repro.summaries import ResourceSummary

        cfg = SummaryConfig(histogram_buckets=16, ttl=10.0)
        s = Server(0)
        s.child_summaries[1] = ResourceSummary.from_store(
            store(schema, 3, 1), cfg, created_at=0.0
        )
        s.replicated_summaries[2] = ResourceSummary.from_store(
            store(schema, 3, 2), cfg, created_at=95.0
        )
        dropped = s.expire_stale_summaries(now=100.0)
        assert dropped == 1
        assert 1 not in s.child_summaries
        assert 2 in s.replicated_summaries

    def test_storage_bytes(self, schema):
        from repro.summaries import ResourceSummary

        cfg = SummaryConfig(histogram_buckets=16)
        s = Server(0)
        st = store(schema, 5)
        s.attach_owner(AttachedOwner("a", st, True))
        summ = ResourceSummary.from_store(st, cfg)
        s.child_summaries[1] = summ
        s.replicated_summaries[2] = summ
        assert s.storage_bytes() == st.size_bytes + 2 * summ.encoded_size()
