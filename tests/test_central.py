"""Tests for repro.central.system."""

import numpy as np
import pytest

from repro.central import CentralConfig, CentralSystem
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)


@pytest.fixture(scope="module")
def workload():
    cfg = WorkloadConfig(num_nodes=24, records_per_node=50, seed=3)
    return cfg, generate_node_stores(cfg)


@pytest.fixture(scope="module")
def system(workload):
    _, stores = workload
    return CentralSystem(CentralConfig(num_nodes=24, seed=3), stores)


class TestConstruction:
    def test_all_records_centralized(self, system, workload):
        _, stores = workload
        assert len(system.store) == sum(len(s) for s in stores)

    def test_mismatch_rejected(self, workload):
        _, stores = workload
        with pytest.raises(ValueError, match="stores supplied"):
            CentralSystem(CentralConfig(num_nodes=5), stores)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CentralConfig(num_nodes=0)
        with pytest.raises(ValueError):
            CentralConfig(record_interval=0)


class TestQueries:
    def test_exact_results(self, system, workload):
        wcfg, stores = workload
        reference = merge_stores(stores)
        for q in generate_queries(wcfg, num_queries=20):
            o = system.execute_query(q, 0)
            assert o.match_count == q.match_count(reference)

    def test_collect_records(self, system, workload):
        wcfg, _ = workload
        q = generate_queries(wcfg, num_queries=1, dimensions=2)[0]
        o = system.execute_query(q, 0, collect_records=True)
        assert o.matches is not None and len(o.matches) == o.match_count

    def test_single_round_trip(self, system, workload):
        wcfg, _ = workload
        q = generate_queries(wcfg, num_queries=1)[0]
        o = system.execute_query(q, 5)
        assert o.round_trip == pytest.approx(2 * o.latency)
        assert o.servers_contacted == 1

    def test_latency_is_client_to_repo(self, system, workload):
        wcfg, _ = workload
        q = generate_queries(wcfg, num_queries=1)[0]
        o = system.execute_query(q, 5)
        expected = system.delay_space.latency(5, system.repository_node)
        assert o.latency == pytest.approx(expected + 0.0005)


class TestOverheads:
    def test_export_bytes(self, system, workload):
        _, stores = workload
        total = sum(len(s) for s in stores)
        assert system.export_bytes_per_epoch() == total * system.record_size_bytes

    def test_update_window(self, system):
        per = system.export_bytes_per_epoch()
        assert system.update_overhead(system.config.record_interval * 3) == 3 * per

    def test_storage(self, system):
        assert system.storage_bytes() == len(system.store) * system.record_size_bytes
