"""Unit tests for repro.roads.policy (voluntary sharing)."""

import numpy as np
import pytest

from repro.query import Query, RangePredicate
from repro.records import RecordStore, Schema, numeric
from repro.roads import (
    AllowListPolicy,
    DenyAllPolicy,
    OpenPolicy,
    PolicyTable,
    RateLimitPolicy,
    TieredPolicy,
)


@pytest.fixture
def schema():
    return Schema([numeric("rate", 0, 1000), numeric("cost", 0, 100)])


@pytest.fixture
def store(schema):
    rng = np.random.default_rng(0)
    vals = np.column_stack([rng.uniform(0, 1000, 50), rng.uniform(0, 100, 50)])
    return RecordStore.from_arrays(schema, vals, [])


def q(requester=None):
    return Query.of(RangePredicate("rate", 0, 1000), requester=requester)


class TestOpenPolicy:
    def test_returns_all_matches(self, store):
        out = OpenPolicy().answer(q("anyone"), store)
        assert len(out) == 50

    def test_respects_query(self, store):
        narrow = Query.of(RangePredicate("rate", 0, 100), requester="x")
        out = OpenPolicy().answer(narrow, store)
        assert len(out) == narrow.match_count(store)


class TestDenyAllPolicy:
    def test_returns_nothing(self, store):
        assert len(DenyAllPolicy().answer(q("anyone"), store)) == 0


class TestAllowListPolicy:
    def test_partner_sees_all(self, store):
        p = AllowListPolicy(frozenset({"partner"}))
        assert len(p.answer(q("partner"), store)) == 50

    def test_stranger_sees_nothing(self, store):
        p = AllowListPolicy(frozenset({"partner"}))
        assert len(p.answer(q("stranger"), store)) == 0

    def test_anonymous_sees_nothing(self, store):
        p = AllowListPolicy(frozenset({"partner"}))
        assert len(p.answer(q(None), store)) == 0


class TestTieredPolicy:
    def test_partner_full_view(self, store):
        p = TieredPolicy(
            partners=frozenset({"acme"}),
            public_predicate=lambda s: s.mask_range("cost", 0, 10),
        )
        assert len(p.answer(q("acme"), store)) == 50

    def test_public_restricted_view(self, store):
        p = TieredPolicy(
            partners=frozenset({"acme"}),
            public_predicate=lambda s: s.mask_range("cost", 0, 10),
        )
        out = p.answer(q("stranger"), store)
        assert len(out) == int(store.mask_range("cost", 0, 10).sum())
        assert all(v <= 10 for v in out.numeric_column("cost"))

    def test_public_limit(self, store):
        p = TieredPolicy(partners=frozenset(), public_limit=5)
        assert len(p.answer(q("x"), store)) == 5

    def test_views_differ_between_requesters(self, store):
        """The paper's motivating property: different views per party."""
        p = TieredPolicy(
            partners=frozenset({"acme"}),
            public_predicate=lambda s: s.mask_range("cost", 0, 10),
        )
        partner_view = p.answer(q("acme"), store)
        public_view = p.answer(q("rando"), store)
        assert len(partner_view) > len(public_view)


class TestRateLimitPolicy:
    def test_caps_results(self, store):
        assert len(RateLimitPolicy(limit=7).answer(q("x"), store)) == 7

    def test_under_cap_untouched(self, store):
        narrow = Query.of(RangePredicate("rate", 0, 30))
        p = RateLimitPolicy(limit=1000)
        assert len(p.answer(narrow, store)) == narrow.match_count(store)


class TestPolicyIsSubsetOfMatches:
    def test_policy_cannot_fabricate(self, store):
        """Every policy answer must be a subset of the true match set."""

        class Evil(OpenPolicy):
            def filter_matches(self, requester, store, mask):
                return np.ones_like(mask)  # returns non-matching rows

        narrow = Query.of(RangePredicate("rate", 0, 10), requester="x")
        if narrow.match_count(store) < len(store):
            with pytest.raises(ValueError, match="outside the match set"):
                Evil().answer(narrow, store)


class TestPolicyTable:
    def test_default_open(self, store):
        table = PolicyTable()
        assert len(table.answer("unknown-owner", q("x"), store)) == 50

    def test_per_owner_override(self, store):
        table = PolicyTable()
        table.set("secretive", DenyAllPolicy())
        assert len(table.answer("secretive", q("x"), store)) == 0
        assert len(table.answer("other", q("x"), store)) == 50

    def test_custom_default(self, store):
        table = PolicyTable(default=DenyAllPolicy())
        assert len(table.answer("anyone", q("x"), store)) == 0
