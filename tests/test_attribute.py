"""Unit tests for repro.records.attribute."""

import pytest

from repro.records import AttributeSpec, AttributeType, categorical, integer, numeric


class TestAttributeType:
    def test_numeric_kinds(self):
        assert AttributeType.FLOAT.is_numeric
        assert AttributeType.INT.is_numeric
        assert not AttributeType.CATEGORICAL.is_numeric
        assert not AttributeType.STRING.is_numeric

    def test_categorical_kinds(self):
        assert AttributeType.CATEGORICAL.is_categorical
        assert AttributeType.STRING.is_categorical
        assert not AttributeType.FLOAT.is_categorical


class TestAttributeSpec:
    def test_defaults(self):
        spec = AttributeSpec("rate")
        assert spec.type is AttributeType.FLOAT
        assert spec.bounds == (0.0, 1.0)
        assert spec.size_bytes == 8
        assert spec.is_numeric

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            AttributeSpec("")

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="lo < hi"):
            AttributeSpec("x", bounds=(1.0, 0.0))

    def test_equal_bounds_rejected(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", bounds=(0.5, 0.5))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError, match="size_bytes"):
            AttributeSpec("x", size_bytes=0)

    def test_numeric_with_categories_rejected(self):
        with pytest.raises(ValueError, match="cannot declare categories"):
            AttributeSpec("x", type=AttributeType.FLOAT, categories=("a",))

    def test_validate_numeric_in_bounds(self):
        spec = numeric("x", 0.0, 10.0)
        spec.validate_value(5)
        spec.validate_value(0.0)
        spec.validate_value(10.0)

    def test_validate_numeric_out_of_bounds(self):
        spec = numeric("x", 0.0, 10.0)
        with pytest.raises(ValueError, match="outside bounds"):
            spec.validate_value(10.5)

    def test_validate_numeric_non_numeric_value(self):
        spec = numeric("x")
        with pytest.raises(ValueError, match="expected numeric"):
            spec.validate_value("fast")

    def test_validate_categorical(self):
        spec = categorical("enc", ("MPEG2", "H264"))
        spec.validate_value("MPEG2")
        with pytest.raises(ValueError, match="not in declared categories"):
            spec.validate_value("AV1")

    def test_validate_categorical_open_universe(self):
        spec = categorical("enc")
        spec.validate_value("anything")

    def test_validate_categorical_non_string(self):
        spec = categorical("enc")
        with pytest.raises(ValueError, match="expected string"):
            spec.validate_value(3)

    def test_frozen(self):
        spec = numeric("x")
        with pytest.raises(AttributeError):
            spec.name = "y"


class TestConvenienceConstructors:
    def test_numeric(self):
        spec = numeric("cpu", 1, 64)
        assert spec.bounds == (1, 64)
        assert spec.type is AttributeType.FLOAT

    def test_integer(self):
        spec = integer("cores", 1, 128)
        assert spec.type is AttributeType.INT
        assert spec.is_numeric

    def test_categorical_tuple(self):
        spec = categorical("os", ["linux", "aix"])
        assert spec.categories == ("linux", "aix")
        assert spec.is_categorical

    def test_categorical_empty_is_open(self):
        assert categorical("os").categories is None
