"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.records import RecordStore, Schema, categorical, numeric
from repro.roads import RoadsConfig, RoadsSystem
from repro.summaries import SummaryConfig
from repro.workload import WorkloadConfig, generate_node_stores, generate_queries


@pytest.fixture
def unit_schema():
    """Four unit-range numeric attributes."""
    return Schema([numeric("a"), numeric("b"), numeric("c"), numeric("d")])


@pytest.fixture
def mixed_schema():
    """Numeric + categorical attributes."""
    return Schema(
        [
            numeric("rate", 0.0, 1000.0),
            numeric("load"),
            categorical("type", ("camera", "microphone", "gps")),
            categorical("encoding"),
        ]
    )


@pytest.fixture
def unit_store(unit_schema):
    """100 uniform records on the unit schema (seeded)."""
    rng = np.random.default_rng(7)
    return RecordStore.from_arrays(unit_schema, rng.random((100, 4)), [])


@pytest.fixture
def mixed_store(mixed_schema):
    rng = np.random.default_rng(11)
    n = 60
    numeric_cols = np.column_stack(
        [rng.uniform(0, 1000, n), rng.random(n)]
    )
    types = rng.choice(["camera", "microphone", "gps"], n).tolist()
    encodings = rng.choice(["MPEG2", "MPEG4", "H264"], n).tolist()
    return RecordStore.from_arrays(
        mixed_schema, numeric_cols, [types, encodings]
    )


@pytest.fixture(scope="session")
def small_workload():
    """A small federation workload reused across integration tests."""
    cfg = WorkloadConfig(num_nodes=32, records_per_node=80, seed=5)
    return cfg, generate_node_stores(cfg)


@pytest.fixture(scope="session")
def small_roads(small_workload):
    """A built ROADS system over the small workload."""
    wcfg, stores = small_workload
    cfg = RoadsConfig(
        num_nodes=32,
        records_per_node=80,
        max_children=4,
        summary=SummaryConfig(histogram_buckets=200),
        seed=5,
    )
    return RoadsSystem.build(cfg, stores)


@pytest.fixture(scope="session")
def small_queries(small_workload):
    wcfg, _ = small_workload
    return generate_queries(wcfg, num_queries=30)
