"""Tests for repro.hierarchy.churn — sustained fail/recover dynamics."""

import numpy as np
import pytest

from repro.hierarchy import MaintenanceConfig
from repro.hierarchy.churn import ChurnConfig, ChurnProcess
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)


def build_churny_system(n=20, seed=77, mttf=120.0, mttr=30.0):
    wcfg = WorkloadConfig(num_nodes=n, records_per_node=40, seed=seed)
    stores = generate_node_stores(wcfg)
    cfg = RoadsConfig(
        num_nodes=n,
        records_per_node=40,
        max_children=3,
        summary=SummaryConfig(histogram_buckets=60),
        seed=seed,
    )
    system = RoadsSystem.build(cfg, stores)
    proto = system.enable_maintenance(
        MaintenanceConfig(heartbeat_interval=2.0, miss_threshold=3,
                          check_interval=2.0)
    )
    churn = ChurnProcess(
        system.sim,
        system.network,
        system.hierarchy,
        proto,
        np.random.default_rng(seed),
        ChurnConfig(
            mean_time_to_failure=mttf,
            mean_time_to_recovery=mttr,
            min_alive=4,
        ),
    )
    return wcfg, stores, system, proto, churn


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(mean_time_to_failure=0)
        with pytest.raises(ValueError):
            ChurnConfig(mean_time_to_recovery=-1)
        with pytest.raises(ValueError):
            ChurnConfig(min_alive=0)


class TestSustainedChurn:
    def test_events_happen_and_tree_stays_valid(self):
        _, _, system, proto, churn = build_churny_system()
        system.sim.run(until=600.0)
        assert churn.stats.crashes >= 3
        assert churn.stats.recoveries >= 1
        # The live membership forms a valid tree.
        system.hierarchy.check_invariants()

    def test_min_alive_floor_respected(self):
        # Aggressive churn: fail fast, recover slowly.
        _, _, system, proto, churn = build_churny_system(
            n=10, mttf=20.0, mttr=200.0
        )
        min_seen = 10
        for _ in range(60):
            system.sim.run(until=system.sim.now + 10.0)
            min_seen = min(min_seen, churn.alive_count())
        assert min_seen >= churn.config.min_alive

    def test_queries_bounded_during_churn(self):
        """Mid-churn, results are a subset of the full federation's truth
        (soft state may transiently hide recovering nodes, but never
        fabricates records) and queries always complete."""
        wcfg, stores, system, proto, churn = build_churny_system()
        queries = generate_queries(wcfg, num_queries=5, dimensions=2)
        everything = merge_stores(stores)
        for phase in range(3):
            system.sim.run(until=system.sim.now + 150.0)
            alive_ids = sorted(s.server_id for s in system.hierarchy if s.alive)
            for q in queries:
                o = system.search(SearchRequest(q, client_node=alive_ids[0])).outcome
                assert o.completed
                assert o.total_matches <= q.match_count(everything)

    def test_queries_exact_after_quiesce(self):
        """Once churn stops and the maintenance protocol heals, queries
        are exact over the surviving membership — 70+ crash/recover
        cycles leave no permanent damage."""
        wcfg, stores, system, proto, churn = build_churny_system()
        queries = generate_queries(wcfg, num_queries=5, dimensions=2)
        system.sim.run(until=600.0)
        assert churn.stats.crashes >= 20
        churn.stop()
        system.sim.run(until=system.sim.now + 120.0)  # heal
        system.hierarchy.check_invariants()
        # No half-broken edges anywhere, no lingering orphans.
        for s in system.hierarchy:
            if s.parent is not None:
                assert any(
                    c.server_id == s.server_id for c in s.parent.children
                )
            if s.alive and s is not system.hierarchy.root:
                assert s.parent is not None
        system.refresh()
        alive_ids = sorted(s.server_id for s in system.hierarchy if s.alive)
        reference = merge_stores([stores[i] for i in alive_ids])
        for q in queries:
            o = system.search(SearchRequest(q, client_node=alive_ids[0])).outcome
            assert o.total_matches == q.match_count(reference)

    def test_availability_accounting(self):
        _, _, system, proto, churn = build_churny_system(mttf=60.0, mttr=60.0)
        system.sim.run(until=400.0)
        a = churn.availability()
        assert 0.2 < a < 1.0
        # With MTTF == MTTR the long-run availability trends toward ~0.5;
        # allow wide slack on a short window.
        assert a < 0.95

    def test_recovered_nodes_rejoin_and_serve(self):
        _, _, system, proto, churn = build_churny_system(mttf=60.0, mttr=20.0)
        system.sim.run(until=500.0)
        assert churn.stats.recoveries >= 2
        # A recovered node is reachable from the root again.
        reachable = {s.server_id for s in system.hierarchy.root.iter_subtree()}
        for server in system.hierarchy:
            if server.alive:
                assert server.server_id in reachable

    def test_stop_halts_events(self):
        _, _, system, proto, churn = build_churny_system(mttf=30.0, mttr=10.0)
        system.sim.run(until=100.0)
        churn.stop()
        crashes = churn.stats.crashes
        system.sim.run(until=400.0)
        assert churn.stats.crashes == crashes
