"""Timing wheel vs heap: exact ordering equivalence and compaction.

The tripwires behind the vectorized dispatch core: the wheel-backed
scheduler must be observationally identical to the historical pure-heap
dispatcher — same firing order, same clocks, same census fingerprint —
for any seeded workload, and heap tombstones must be compacted before
they dominate.
"""

import numpy as np
import pytest

import repro.sim.engine as engine
from repro.bench import RunPlan, profile_scenario, run_scenario
from repro.sim.engine import Simulator, TimingWheel


def _mixed_workload(sim: Simulator, seed: int) -> list:
    """Drive a randomized mix of one-shots, periodics, nested schedules
    and cancellations; returns the observed firing log."""
    rng = np.random.default_rng(seed)
    log = []
    handles = []

    def fire(tag):
        log.append((round(sim.now, 9), tag))
        # Nested schedules from inside handlers, including same-instant
        # ones that land in the slot currently being drained.
        if rng.random() < 0.3:
            tag2 = f"{tag}+n"
            sim.schedule(float(rng.choice([0.0, 0.01, 0.5])),
                         lambda: log.append((round(sim.now, 9), tag2)))

    for i in range(400):
        # Mix dense near-future delays (wheel) with far-future ones
        # beyond the 3276.8s default horizon (overflow heap) and exact
        # ties (seq-ordered).
        delay = float(rng.choice([
            rng.uniform(0, 2), rng.uniform(0, 60),
            rng.uniform(3000, 8000), 1.0, 1.0,
        ]))
        handles.append(sim.schedule(delay, lambda i=i: fire(f"e{i}")))
    for j in range(6):
        sim.schedule_periodic(
            0.7 + 0.1 * j, lambda j=j: log.append((round(sim.now, 9), f"p{j}")),
            first_delay=0.1 * j,
        )
    # Cancel a deterministic third of the one-shots.
    for k, h in enumerate(handles):
        if k % 3 == 0:
            h.cancel()
    sim.run(until=40.0)
    return log


class TestWheelHeapEquivalence:
    def test_firing_log_identical(self):
        for seed in (1, 7):
            wheel_log = _mixed_workload(Simulator(use_wheel=True), seed)
            heap_log = _mixed_workload(Simulator(use_wheel=False), seed)
            assert wheel_log == heap_log
            assert wheel_log  # the workload actually fired

    def test_clock_and_counters_identical(self):
        a, b = Simulator(use_wheel=True), Simulator(use_wheel=False)
        _mixed_workload(a, 3)
        _mixed_workload(b, 3)
        assert a.now == b.now
        assert a.processed == b.processed
        assert a.pending == b.pending

    def test_max_events_resumes_identically(self):
        def drive(sim):
            log = []
            for i in range(50):
                sim.schedule(0.01 * (i % 7), lambda i=i: log.append(i))
            while sim.run(max_events=7):
                pass
            return log

        assert drive(Simulator(use_wheel=True)) == drive(
            Simulator(use_wheel=False)
        )

    def test_far_future_lands_on_heap(self):
        sim = Simulator()
        near = sim.schedule(1.0, lambda: None)
        far = sim.schedule(10_000.0, lambda: None)
        assert not near._in_heap
        assert far._in_heap

    def test_wheel_validation(self):
        with pytest.raises(engine.SimulationError):
            TimingWheel(tick=0.0)
        with pytest.raises(engine.SimulationError):
            TimingWheel(fanout=1)


class TestSystemLevelEquivalence:
    """Whole-scenario tripwire: flipping the dispatcher must change
    nothing observable about a seeded canonical run."""

    @pytest.fixture(scope="class")
    def pair(self):
        plan = RunPlan("overlay", scale="smoke", seed=3, profile=False)
        results = {}
        for use_wheel in (True, False):
            old = engine.DEFAULT_USE_WHEEL
            engine.DEFAULT_USE_WHEEL = use_wheel
            try:
                results[use_wheel] = (
                    run_scenario(plan),
                    profile_scenario(RunPlan("overlay", scale="smoke", seed=3)),
                )
            finally:
                engine.DEFAULT_USE_WHEEL = old
        return results

    def test_latency_summaries_agree(self, pair):
        lat_wheel = pair[True][0].simulated["latency"]
        lat_heap = pair[False][0].simulated["latency"]
        assert lat_wheel == lat_heap

    def test_event_counts_and_mix_agree(self, pair):
        sim_wheel = pair[True][0].simulated
        sim_heap = pair[False][0].simulated
        assert sim_wheel["events_processed"] == sim_heap["events_processed"]
        assert sim_wheel["events_emitted"] == sim_heap["events_emitted"]
        # delivery mix: per-kind, per-destination event census
        assert pair[True][1]["census"] == pair[False][1]["census"]

    def test_census_fingerprint_identical(self, pair):
        assert (
            pair[True][1]["census_fingerprint"]
            == pair[False][1]["census_fingerprint"]
        )

    def test_deterministic_metrics_agree(self, pair):
        from repro.bench import comparable_dict

        assert comparable_dict(pair[True][0]) == comparable_dict(
            pair[False][0]
        )


class TestHeapCompaction:
    def test_tombstones_compacted_above_half(self):
        sim = Simulator(use_wheel=True)
        # Beyond-horizon events go to the heap; cancel just over half.
        handles = [
            sim.schedule(5000.0 + i, lambda: None) for i in range(200)
        ]
        for h in handles[:101]:
            h.cancel()
        assert len(sim._queue) < 200
        assert sim._heap_cancelled == 0
        assert all(not ev.cancelled for ev in sim._queue)
        assert sim.pending == 99

    def test_small_heaps_left_alone(self):
        sim = Simulator(use_wheel=True)
        handles = [sim.schedule(5000.0 + i, lambda: None) for i in range(10)]
        for h in handles:
            h.cancel()
        # Below the compaction floor: tombstones stay until popped.
        assert len(sim._queue) == 10
        sim.run()
        assert sim.processed == 0

    def test_compaction_preserves_order(self):
        sim = Simulator(use_wheel=False)
        log = []
        handles = [
            sim.schedule(float(i % 13) + 1.0, lambda i=i: log.append(i))
            for i in range(300)
        ]
        cancelled = {i for i in range(300) if i % 2 == 0}
        for i in sorted(cancelled):
            handles[i].cancel()
        ref = Simulator(use_wheel=False)
        ref_log = []
        for i in range(300):
            if i not in cancelled:
                ref.schedule(float(i % 13) + 1.0, lambda i=i: ref_log.append(i))
        sim.run()
        ref.run()
        assert log == ref_log
