"""Feature-interaction tests.

Production systems break where features meet. These tests combine the
library's orthogonal features — guests, delta updates, scope control,
early termination, policies, tracing, churn — and check the pairings
behave as the sum of their parts.
"""

import numpy as np
import pytest

from repro.hierarchy import MaintenanceConfig
from repro.query import Query, RangePredicate
from repro.records import RecordStore
from repro.roads import (
    DenyAllPolicy,
    GuestOwner,
    RoadsConfig,
    RoadsSystem,
    SearchRequest,
    TieredPolicy,
)
from repro.summaries import SummaryConfig
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    make_schema,
    merge_stores,
)

N = 20


def build(seed=111, delta=False, guests=()):
    wcfg = WorkloadConfig(num_nodes=N, records_per_node=50, seed=seed)
    stores = generate_node_stores(wcfg)
    system = RoadsSystem.build(
        RoadsConfig(
            num_nodes=N,
            records_per_node=50,
            max_children=3,
            summary=SummaryConfig(histogram_buckets=60),
            delta_updates=delta,
            seed=seed,
        ),
        stores,
        guests=list(guests),
    )
    return wcfg, stores, system


def guest_store(wcfg, seed=5, n=200, band=(0.4, 0.6)):
    schema = make_schema(wcfg)
    rng = np.random.default_rng(seed)
    cols = rng.random((n, wcfg.num_attributes))
    cols[:, 0] = band[0] + (band[1] - band[0]) * rng.random(n)
    return RecordStore.from_arrays(schema, cols, [])


class TestGuestsWithDelta:
    def test_guest_summaries_participate_in_delta(self):
        wcfg = WorkloadConfig(num_nodes=N, records_per_node=50, seed=111)
        gs = guest_store(wcfg)
        _, stores, system = build(
            delta=True, guests=[GuestOwner(gs, attach_to=3, owner_id="g")]
        )
        system.refresh()  # arm fingerprints
        steady = system.refresh()
        assert steady.aggregation.full_reports == 0
        # A change in the guest's data re-ships the attachment path.
        gs.update_numeric(0, "u0", 0.95)
        report = system.refresh()
        assert report.aggregation.full_reports >= 1
        # And the guest's new value is discoverable.
        q = Query.of(RangePredicate("u0", 0.94, 0.96))
        o = system.search(SearchRequest(q, client_node=0)).outcome
        assert any(h.owner_id == "g" for h in o.owner_hits)


class TestGuestsWithScope:
    def test_scoped_query_sees_guest_only_in_its_branch(self):
        wcfg = WorkloadConfig(num_nodes=N, records_per_node=50, seed=111)
        gs = guest_store(wcfg)
        _, stores, system = build(
            guests=[GuestOwner(gs, attach_to=3, owner_id="g")]
        )
        attach_server = system.hierarchy.get(3)
        q = Query.of(RangePredicate("u0", 0.45, 0.55))
        # Scope = the attachment server's subtree root: guest visible.
        scoped_in = system.search(SearchRequest(q, client_node=0, scope=attach_server.root_path[1]
            if len(attach_server.root_path) > 1
            else attach_server.server_id)).outcome
        in_branch = any(h.owner_id == "g" for h in scoped_in.owner_hits)
        # Scope = a sibling branch: guest invisible.
        root = system.hierarchy.root
        other_branch = next(
            c.server_id
            for c in root.children
            if attach_server.server_id not in
            [s.server_id for s in c.iter_subtree()]
        )
        scoped_out = system.search(SearchRequest(q, client_node=0, scope=other_branch)).outcome
        out_branch = any(h.owner_id == "g" for h in scoped_out.owner_hits)
        assert in_branch and not out_branch


class TestFirstKWithPolicies:
    def test_denied_owners_do_not_satisfy_first_k(self):
        """Early termination counts *returned* records, so a deny-all
        owner's hits don't stop the search prematurely."""
        wcfg, stores, system = build()
        reference = merge_stores(stores)
        q = max(
            generate_queries(wcfg, num_queries=8, dimensions=2),
            key=lambda q: q.match_count(reference),
        )
        # Deny at the owner holding the most matches.
        per_owner = [(i, q.match_count(stores[i])) for i in range(N)]
        top = max(per_owner, key=lambda t: t[1])[0]
        system.set_policy(f"owner-{top}", DenyAllPolicy())
        k = 5
        o = system.search(SearchRequest(q, client_node=0, first_k=k)).outcome
        assert o.total_matches >= k
        denied = [h for h in o.owner_hits if h.owner_id == f"owner-{top}"]
        for h in denied:
            assert h.match_count == 0


class TestTieredPolicyWithTrace:
    def test_trace_shows_policy_filtered_counts(self):
        wcfg, stores, system = build()
        for i in range(N):
            system.set_policy(
                f"owner-{i}",
                TieredPolicy(partners=frozenset({"friend"}), public_limit=1),
            )
        q = Query.of(RangePredicate("u0", 0.0, 1.0))
        pub = system.search(SearchRequest(q.with_requester("stranger"), client_node=0, trace=True)).outcome
        friend = system.search(SearchRequest(q.with_requester("friend"), client_node=0)).outcome
        assert pub.total_matches == N  # one record per owner
        assert friend.total_matches == sum(len(s) for s in stores)
        owner_events = [e for e in pub.trace if e[1] == "owner"]
        assert all("matches=1" in e[3] for e in owner_events)


class TestChurnWithGuests:
    def test_guest_survives_attachment_churn(self):
        wcfg = WorkloadConfig(num_nodes=N, records_per_node=50, seed=112)
        gs = guest_store(wcfg, seed=6)
        stores = generate_node_stores(wcfg)
        probe = RoadsSystem.build(
            RoadsConfig(num_nodes=N, records_per_node=50, max_children=3,
                        summary=SummaryConfig(histogram_buckets=60), seed=112),
            stores, refresh=False,
        )
        leaf_id = probe.hierarchy.leaves()[-1].server_id
        system = RoadsSystem.build(
            RoadsConfig(num_nodes=N, records_per_node=50, max_children=3,
                        summary=SummaryConfig(histogram_buckets=60), seed=112),
            stores,
            guests=[GuestOwner(gs, attach_to=leaf_id, owner_id="g")],
        )
        proto = system.enable_maintenance(
            MaintenanceConfig(heartbeat_interval=2.0, miss_threshold=3)
        )
        # Kill the attachment point twice in a row; re-home each time.
        for _ in range(2):
            sid = system._guest_attachment["g"]
            proto.fail(system.hierarchy.get(sid))
            system.sim.run(until=system.sim.now + 30.0)
            assert system.reattach_orphaned_guests() == 1
            system.refresh()
            q = Query.of(RangePredicate("u0", 0.45, 0.55))
            o = system.search(SearchRequest(q, client_node=next(
                    s.server_id for s in system.hierarchy if s.alive
                ))).outcome
            assert any(h.owner_id == "g" for h in o.owner_hits)


class TestWideningWithFirstK:
    def test_widening_with_early_termination_composes(self):
        wcfg, stores, system = build()
        reference = merge_stores(stores)
        q = max(
            generate_queries(wcfg, num_queries=8, dimensions=2),
            key=lambda q: q.match_count(reference),
        )
        leaf = max(system.hierarchy, key=lambda s: s.depth)
        outcomes = [r.outcome for r in system.widening(SearchRequest(q, client_node=leaf.server_id), min_matches=3)]
        assert outcomes[-1].total_matches >= 3 or (
            outcomes[-1].total_matches == q.match_count(reference)
        )
