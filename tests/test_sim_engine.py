"""Unit tests for repro.sim.engine."""

import pytest

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestRunControl:
    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        n = sim.run(until=5.0)
        assert n == 1 and fired == [1]
        assert sim.now == 5.0  # clock advanced to the horizon
        sim.run()
        assert fired == [1, 10]

    def test_run_max_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending == 2

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        assert sim.step() is True
        assert sim.step() is False
        assert fired == [1]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed == 4


class TestPendingCounter:
    """``Simulator.pending`` is an exact O(1) live-event count."""

    def test_cancel_decrements_pending(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        ev.cancel()
        assert sim.pending == 1

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        ev.cancel()
        assert sim.pending == 0

    def test_max_events_pushback_keeps_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=2)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_cancelled_events_never_fire_and_drain(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(2.0, lambda: fired.append("keep"))
        drop = sim.schedule(1.0, lambda: fired.append("drop"))
        drop.cancel()
        assert sim.pending == 1
        sim.run()
        assert fired == ["keep"]
        assert sim.pending == 0
        assert keep.fired and not drop.fired


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        task = sim.schedule_periodic(2.0, lambda: ticks.append(sim.now))
        sim.run(until=9.0)
        assert ticks == [2.0, 4.0, 6.0, 8.0]
        assert task.fired == 4

    def test_first_delay(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(5.0, lambda: ticks.append(sim.now), first_delay=0.0)
        sim.run(until=11.0)
        assert ticks == [0.0, 5.0, 10.0]

    def test_stop(self):
        sim = Simulator()
        ticks = []
        task = sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.5)
        task.stop()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert task.stopped

    def test_stop_from_within_callback(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = sim.schedule_periodic(1.0, tick)
        sim.run(until=10.0)
        assert len(ticks) == 2

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_periodic(0.0, lambda: None)

    def test_jitter_bounded(self):
        import numpy as np

        sim = Simulator()
        ticks = []
        rng = np.random.default_rng(0)
        sim.schedule_periodic(
            10.0, lambda: ticks.append(sim.now), jitter=0.1, rng=rng
        )
        sim.run(until=100.0)
        gaps = np.diff([0.0] + ticks)
        assert all(9.0 <= g <= 11.0 for g in gaps)
