"""Edge-case tests across modules: timeout paths, empty inputs, and
less-travelled branches."""

import numpy as np
import pytest

from repro.hierarchy import (
    AttachedOwner,
    Server,
    aggregate_round,
    build_hierarchy,
)
from repro.net import DelaySpace, Network
from repro.overlay import decide_local
from repro.query import Query, RangePredicate
from repro.records import RecordStore, Schema, numeric
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.roads.client import QueryExecution
from repro.sim import MetricsCollector, Simulator
from repro.summaries import ResourceSummary, SummaryConfig
from repro.workload import WorkloadConfig, generate_node_stores


class TestQueryTimeoutPath:
    def test_failed_server_times_out_not_hangs(self):
        """A query to a crashed server completes via the timeout and
        reports the server as timed out."""
        wcfg = WorkloadConfig(num_nodes=12, records_per_node=20, seed=41)
        stores = generate_node_stores(wcfg)
        system = RoadsSystem.build(
            RoadsConfig(num_nodes=12, records_per_node=20, max_children=3,
                        summary=SummaryConfig(histogram_buckets=40), seed=41),
            stores,
        )
        # Crash a branch top silently — summaries still point at it.
        victim = next(
            s for s in system.hierarchy if not s.is_root and s.children
        )
        system.network.fail_node(victim.server_id)
        victim.alive = False
        q = Query.of(RangePredicate("u0", 0.0, 1.0))
        outcome = system.search(SearchRequest(q, client_node=0)).outcome
        assert outcome.completed
        assert victim.server_id in outcome.timed_out_servers
        # The rest of the federation still answered.
        assert outcome.total_matches > 0

    def test_latency_not_poisoned_by_timeouts(self):
        """Timed-out contacts don't inflate the latency metric (which
        only counts arrivals at servers actually reached)."""
        wcfg = WorkloadConfig(num_nodes=12, records_per_node=20, seed=42)
        stores = generate_node_stores(wcfg)
        system = RoadsSystem.build(
            RoadsConfig(num_nodes=12, records_per_node=20, max_children=3,
                        summary=SummaryConfig(histogram_buckets=40), seed=42),
            stores,
        )
        leaf = system.hierarchy.leaves()[0]
        system.network.fail_node(leaf.server_id)
        leaf.alive = False
        q = Query.of(RangePredicate("u0", 0.0, 1.0))
        outcome = system.search(SearchRequest(q, client_node=0)).outcome
        assert outcome.latency < 5.0  # well under the 5 s timeout


class TestDecideLocal:
    def test_owners_only_no_redirects(self, unit_store):
        cfg = SummaryConfig(histogram_buckets=20)
        s = Server(0)
        child = Server(1)
        s.add_child(child)
        s.attach_owner(AttachedOwner("o", unit_store, True))
        s.child_summaries[1] = ResourceSummary.from_store(unit_store, cfg)
        decision = decide_local(s, Query.of(RangePredicate("a", 0, 1)), cfg)
        assert decision.redirect_ids == []
        assert decision.owners_only_ids == []
        assert [o.owner_id for o in decision.owner_hits] == ["o"]


class TestAggregationEdges:
    def test_refresh_exports_false_skips_export_bytes(self):
        schema = Schema([numeric("a")])
        h = build_hierarchy(Server(i, max_children=2) for i in range(3))
        guest_store = RecordStore.from_arrays(
            schema, np.random.default_rng(0).random((5, 1)), []
        )
        h.get(1).attach_owner(
            AttachedOwner("g", guest_store, controls_server=False)
        )
        cfg = SummaryConfig(histogram_buckets=8)
        # First round creates the export.
        aggregate_round(h, cfg)
        report = aggregate_round(h, cfg, refresh_exports=False)
        assert report.export_bytes == 0
        # The stale summary is still used for aggregation.
        assert report.aggregation_bytes > 0

    def test_empty_federation_aggregates_nothing(self):
        h = build_hierarchy(Server(i, max_children=2) for i in range(4))
        cfg = SummaryConfig(histogram_buckets=8)
        report = aggregate_round(h, cfg)
        # Messages flow (soft-state headers) but no summaries exist.
        assert report.messages == 3
        assert h.root.branch_summary(cfg) is None


class TestStoreEdges:
    def test_store_of_zero_records_summary_empty(self):
        schema = Schema([numeric("a")])
        st = RecordStore(schema)
        s = ResourceSummary.from_store(st, SummaryConfig(histogram_buckets=8))
        assert s.is_empty
        assert not s.may_match(Query.of(RangePredicate("a", 0, 1)))

    def test_single_record_store(self):
        schema = Schema([numeric("a")])
        st = RecordStore.from_arrays(schema, np.array([[0.5]]), [])
        q = Query.of(RangePredicate("a", 0.4, 0.6))
        assert q.match_count(st) == 1


class TestSimulatorEdges:
    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(Exception):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_zero(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(1))
        sim.run(until=0.0)
        assert fired == [1]

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.pending == 1


class TestNetworkEdges:
    def test_message_ids_unique(self):
        sim = Simulator()
        ds = DelaySpace(4, np.random.default_rng(0))
        net = Network(sim, ds, MetricsCollector())
        a = net.send(0, 1, "query", 1)
        b = net.send(0, 1, "query", 1)
        assert a.msg_id != b.msg_id

    def test_unregister(self):
        sim = Simulator()
        ds = DelaySpace(4, np.random.default_rng(0))
        net = Network(sim, ds, MetricsCollector())
        got = []
        net.register(1, lambda m: got.append(m))
        net.unregister(1)
        net.send(0, 1, "query", 1)
        sim.run()
        assert got == []


class TestGeneratorEdges:
    def test_zero_records_per_node(self):
        cfg = WorkloadConfig(num_nodes=2, records_per_node=0, seed=1)
        stores = generate_node_stores(cfg)
        assert all(len(s) == 0 for s in stores)
        # A federation of empty owners still builds and answers (nothing).
        system = RoadsSystem.build(
            RoadsConfig(num_nodes=2, records_per_node=0, max_children=2,
                        summary=SummaryConfig(histogram_buckets=8), seed=1),
            stores,
        )
        q = Query.of(RangePredicate("u0", 0, 1))
        assert system.search(SearchRequest(q, client_node=0)).outcome.total_matches == 0
