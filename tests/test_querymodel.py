"""Tests for the analytical query-forwarding model, including validation
against the simulator."""

import numpy as np
import pytest

from repro.analysis.querymodel import (
    QueryCostParams,
    branch_match_probability,
    expected_contacts,
    expected_query_bytes,
    leaf_match_probability_from_dims,
    levels,
    measured_dimension_probabilities,
    subtree_sizes,
)
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import ResourceSummary, SummaryConfig
from repro.workload import WorkloadConfig, generate_node_stores, generate_queries


class TestModelPieces:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            QueryCostParams(0, 8, 0.1)
        with pytest.raises(ValueError):
            QueryCostParams(10, 1, 0.1)
        with pytest.raises(ValueError):
            QueryCostParams(10, 8, 1.5)

    def test_levels_matches_capacity(self):
        assert levels(QueryCostParams(1, 8, 0.1)) == 1
        assert levels(QueryCostParams(9, 8, 0.1)) == 2
        assert levels(QueryCostParams(73, 8, 0.1)) == 3
        assert levels(QueryCostParams(74, 8, 0.1)) == 4

    def test_subtree_sizes_shrink_by_degree(self):
        sizes = subtree_sizes(QueryCostParams(320, 8, 0.1))
        assert sizes[0] == 320
        for a, b in zip(sizes, sizes[1:]):
            # each level divides by the degree, floored at one server
            assert b == pytest.approx(max(1, a / 8), rel=0.2)

    def test_branch_match_probability_limits(self):
        assert branch_match_probability(0.0, 100) == 0.0
        assert branch_match_probability(1.0, 1) == 1.0
        assert branch_match_probability(0.1, 10**6) == pytest.approx(1.0)
        # monotone in subtree size
        assert branch_match_probability(0.05, 50) > branch_match_probability(
            0.05, 5
        )

    def test_expected_contacts_bounds(self):
        p = QueryCostParams(320, 8, 0.0)
        assert expected_contacts(p) == 0.0
        p = QueryCostParams(320, 8, 1.0)
        assert expected_contacts(p) == pytest.approx(320, rel=0.01)

    def test_expected_contacts_monotone_in_p(self):
        lo = expected_contacts(QueryCostParams(320, 8, 0.02))
        hi = expected_contacts(QueryCostParams(320, 8, 0.2))
        assert hi > lo

    def test_expected_bytes_scale(self):
        p = QueryCostParams(320, 8, 0.1)
        b = expected_query_bytes(p, query_size_bytes=160)
        assert b == pytest.approx(expected_contacts(p) * 192)

    def test_leaf_probability_product(self):
        assert leaf_match_probability_from_dims([0.5, 0.5]) == 0.25
        assert leaf_match_probability_from_dims([]) == 1.0


class TestValidationAgainstSimulation:
    """The model should land within a factor ~2 of the simulator."""

    @pytest.fixture(scope="class")
    def measured(self):
        n = 96
        wcfg = WorkloadConfig(num_nodes=n, records_per_node=200, seed=11)
        stores = generate_node_stores(wcfg)
        cfg = SummaryConfig(histogram_buckets=1000)
        system = RoadsSystem.build(
            RoadsConfig(
                num_nodes=n, records_per_node=200, max_children=8,
                summary=cfg, seed=11,
            ),
            stores,
        )
        queries = generate_queries(wcfg, num_queries=40)
        summaries = [
            ResourceSummary.from_store(s, cfg) for s in stores
        ]
        dim_probs = measured_dimension_probabilities(summaries, queries)
        contacts = [
            system.search(SearchRequest(q, client_node=0)).outcome.servers_contacted
            for q in queries
        ]
        return n, dim_probs, float(np.mean(contacts)), queries

    def test_dimension_probabilities_sane(self, measured):
        _, dim_probs, _, queries = measured
        # Uniform dims match essentially always; Gaussian/Pareto prune.
        assert dim_probs["u0"] > 0.95
        assert dim_probs["g0"] < 0.7
        assert all(0.0 <= v <= 1.0 for v in dim_probs.values())

    def test_model_predicts_simulated_contacts(self, measured):
        n, dim_probs, sim_contacts, queries = measured
        # Average per-query leaf probability from the measured per-dim
        # probabilities (all queries share the attribute cycle).
        attrs = queries[0].attributes
        p_leaf = leaf_match_probability_from_dims(
            [dim_probs[a] for a in attrs]
        )
        model = expected_contacts(QueryCostParams(n, 8, p_leaf))
        assert model == pytest.approx(sim_contacts, rel=1.0)
        assert model > 0
