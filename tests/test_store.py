"""Unit tests for repro.records.store."""

import numpy as np
import pytest

from repro.records import RecordStore, ResourceRecord, Schema, categorical, numeric


@pytest.fixture
def schema():
    return Schema([numeric("a"), numeric("b"), categorical("c")])


def make_store(schema, n=10, seed=0):
    rng = np.random.default_rng(seed)
    cats = ["x" if i % 2 == 0 else "y" for i in range(n)]
    return RecordStore.from_arrays(schema, rng.random((n, 2)), [cats])


class TestConstruction:
    def test_empty(self, schema):
        st = RecordStore(schema)
        assert len(st) == 0
        assert st.size_bytes == 0

    def test_from_arrays(self, schema):
        st = make_store(schema, 10)
        assert len(st) == 10
        assert st.vocabulary("c") == ("x", "y")

    def test_from_arrays_bad_shape(self, schema):
        with pytest.raises(ValueError, match="shape"):
            RecordStore.from_arrays(schema, np.zeros((5, 3)), [["x"] * 5])

    def test_from_arrays_wrong_cat_count(self, schema):
        with pytest.raises(ValueError, match="categorical columns"):
            RecordStore.from_arrays(schema, np.zeros((5, 2)), [])

    def test_from_arrays_wrong_cat_length(self, schema):
        with pytest.raises(ValueError, match="length"):
            RecordStore.from_arrays(schema, np.zeros((5, 2)), [["x"] * 4])

    def test_from_records(self, schema):
        recs = [
            ResourceRecord(schema, {"a": 0.1, "b": 0.2, "c": "x"}),
            ResourceRecord(schema, {"a": 0.3, "b": 0.4, "c": "y"}),
        ]
        st = RecordStore.from_records(schema, recs)
        assert len(st) == 2
        assert st.record_at(0) == recs[0]


class TestMutation:
    def test_append(self, schema):
        st = RecordStore(schema)
        st.append(ResourceRecord(schema, {"a": 0.5, "b": 0.5, "c": "z"}))
        assert len(st) == 1
        assert st.categorical_column("c") == ["z"]

    def test_append_wrong_schema(self, schema):
        other = Schema([numeric("a")])
        st = RecordStore(schema)
        with pytest.raises(ValueError, match="schema"):
            st.append(ResourceRecord(other, {"a": 0.5}))

    def test_update_numeric(self, schema):
        st = make_store(schema, 5)
        st.update_numeric(2, "a", 0.999)
        assert st.numeric_column("a")[2] == pytest.approx(0.999)

    def test_update_numeric_validates(self, schema):
        st = make_store(schema, 5)
        with pytest.raises(ValueError):
            st.update_numeric(0, "a", 2.5)  # outside unit bounds

    def test_clear(self, schema):
        st = make_store(schema, 5)
        st.clear()
        assert len(st) == 0


class TestAccess:
    def test_columns(self, schema):
        st = make_store(schema, 6)
        assert st.numeric_column("a").shape == (6,)
        assert len(st.categorical_column("c")) == 6
        assert st.categorical_codes("c").dtype == np.int32

    def test_numeric_matrix(self, schema):
        st = make_store(schema, 6)
        assert st.numeric_matrix.shape == (6, 2)

    def test_record_roundtrip(self, schema):
        st = make_store(schema, 4)
        rec = st.record_at(1)
        assert rec["c"] in ("x", "y")
        assert 0 <= rec["a"] <= 1

    def test_iter_records(self, schema):
        st = make_store(schema, 4)
        assert len(list(st.iter_records())) == 4


class TestMatching:
    def test_mask_range(self, schema):
        st = make_store(schema, 50)
        mask = st.mask_range("a", 0.25, 0.75)
        col = st.numeric_column("a")
        assert np.array_equal(mask, (col >= 0.25) & (col <= 0.75))

    def test_mask_equals(self, schema):
        st = make_store(schema, 10)
        mask = st.mask_equals("c", "x")
        assert mask.sum() == 5

    def test_mask_equals_unknown_value(self, schema):
        st = make_store(schema, 10)
        assert st.mask_equals("c", "nope").sum() == 0

    def test_select(self, schema):
        st = make_store(schema, 10)
        sub = st.select(st.mask_equals("c", "y"))
        assert len(sub) == 5
        assert set(sub.categorical_column("c")) == {"y"}


class TestMerge:
    def test_merged_with(self, schema):
        a = make_store(schema, 4, seed=1)
        b = make_store(schema, 6, seed=2)
        merged = a.merged_with(b)
        assert len(merged) == 10
        # Row order preserved: first a's rows, then b's.
        assert np.allclose(merged.numeric_matrix[:4], a.numeric_matrix)

    def test_merged_with_new_vocab(self, schema):
        a = RecordStore.from_arrays(schema, np.zeros((2, 2)), [["p", "p"]])
        b = RecordStore.from_arrays(schema, np.zeros((2, 2)), [["q", "p"]])
        merged = a.merged_with(b)
        assert merged.categorical_column("c") == ["p", "p", "q", "p"]

    def test_merged_with_wrong_schema(self, schema):
        other = RecordStore(Schema([numeric("a")]))
        with pytest.raises(ValueError, match="different schemas"):
            make_store(schema).merged_with(other)
