"""Time-series metrics plane: rings, rollups, sampler, zero perturbation.

The sampler snapshots per-server/per-plane gauges into bounded
downsampling ring buffers on a sim-clock cadence. Sampling only reads
state, so arming it must leave every simulated outcome byte-identical —
the determinism tripwire this suite asserts directly.
"""

import pytest

from repro.net.transport import ServiceConfig
from repro.roads import RoadsConfig, RoadsSystem
from repro.roads.search import RetryPolicy, SearchRequest
from repro.summaries import SummaryConfig
from repro.telemetry import (
    FlightRecorder,
    HealthProbe,
    HealthSLO,
    RingSeries,
    RollupPoint,
    SeriesConfig,
    SeriesSampler,
    Telemetry,
    sparkline,
)
from repro.telemetry.export import (
    read_series_jsonl,
    series_jsonl,
    write_series_jsonl,
)
from repro.workload import WorkloadConfig, generate_node_stores
from repro.workload.queries import generate_queries

SEED = 11
NODES = 24


def build_system(*, loss=0.0, telemetry=None, service=None, interval=1.0):
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=50, seed=SEED)
    cfg = RoadsConfig(
        num_nodes=NODES,
        records_per_node=50,
        max_children=4,
        summary=SummaryConfig(histogram_buckets=200),
        summary_interval=interval,
        delta_updates=True,
        loss_rate=loss,
        seed=SEED,
    )
    system = RoadsSystem.build(
        cfg, generate_node_stores(wcfg), telemetry=telemetry
    )
    if service is not None:
        system.enable_service(service)
    return system


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_low_bars(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_monotone_ramp_ends_high(self):
        line = sparkline(list(range(8)))
        assert line[0] == "▁" and line[-1] == "█"

    def test_folds_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40


class TestRingSeries:
    def test_raw_window_bounded(self):
        ring = RingSeries("g", raw_window=8, rollup_every=4, rollup_window=4)
        for i in range(50):
            ring.append(i * 0.1, float(i))
        assert len(ring) == 8
        assert ring.appended == 50
        assert ring.last == (pytest.approx(4.9), 49.0)
        # Rollup ring bounded too: 50/4 = 12 folds, only 4 retained.
        assert len(ring.rollups) == 4

    def test_rollup_statistics(self):
        ring = RingSeries("g", rollup_every=4)
        for t, v in enumerate([1.0, 5.0, 3.0, 7.0]):
            ring.append(float(t), v)
        (r,) = ring.rollups
        assert r.count == 4
        assert r.vmin == 1.0 and r.vmax == 7.0
        assert r.mean == pytest.approx(4.0)
        assert r.p95 == 7.0
        assert (r.t_start, r.t_end) == (0.0, 3.0)

    def test_window_filters_by_time(self):
        ring = RingSeries("g")
        for i in range(10):
            ring.append(float(i), float(i))
        assert ring.window(3.0, 6.0) == [(3.0, 3.0), (4.0, 4.0),
                                         (5.0, 5.0), (6.0, 6.0)]
        assert ring.rollups_in(0.0, 100.0) == list(ring.rollups)

    def test_rollup_point_round_trip(self):
        ring = RingSeries("g", rollup_every=2)
        ring.append(0.0, 1.0)
        ring.append(1.0, 2.0)
        (r,) = ring.rollups
        assert RollupPoint.from_dict(r.to_dict()) == r

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            RingSeries("g", raw_window=0)
        with pytest.raises(ValueError, match="interval"):
            SeriesConfig(interval=0.0)


class TestSampler:
    def test_cadence_and_gauge_names(self):
        system = build_system(
            loss=0.1, service=ServiceConfig(service_time=0.002)
        )
        system.update_plane.start()
        t0 = system.sim.now
        sampler = SeriesSampler(system, SeriesConfig(interval=0.5)).start()
        system.sim.run(until=t0 + 4.0)
        sampler.stop()
        assert sampler.samples == 8
        names = sampler.names()
        for expect in (
            "net.sent", "net.lost", "sim.pending", "bytes.query",
            "bytes.update", "update.inflight", "summary.entries",
            "summary.stale_fraction", "service.depth",
            "service.depth_total", "service.waiting_total",
        ):
            assert expect in names
        # Federation-wide ring sampled every tick; loss observed.
        sent = sampler.series("net.sent")
        assert len(sent) == 8
        assert sampler.series("net.lost").last[1] > 0
        # Per-server service gauges keyed by server id.
        sid = system.hierarchy.root.server_id
        assert sampler.series("service.depth", sid) is not None

    def test_per_server_opt_out(self):
        system = build_system(service=ServiceConfig(service_time=0.002))
        system.update_plane.start()
        sampler = SeriesSampler(
            system, SeriesConfig(interval=0.5, per_server=False)
        ).start()
        system.sim.run(until=system.sim.now + 2.0)
        assert all(r.server is None for r in sampler.all_series())
        assert "service.depth_total" in sampler.names()

    def test_rows_schema_and_jsonl_round_trip(self, tmp_path):
        system = build_system()
        system.update_plane.start()
        sampler = SeriesSampler(
            system, SeriesConfig(interval=0.25, rollup_every=4)
        ).start()
        system.sim.run(until=system.sim.now + 3.0)
        rows = sampler.rows()
        kinds = {r["kind"] for r in rows}
        assert kinds == {"raw", "rollup"}
        raw = next(r for r in rows if r["kind"] == "raw")
        assert {"metric", "server", "t", "value"} <= set(raw)
        rollup = next(r for r in rows if r["kind"] == "rollup")
        assert {"min", "max", "mean", "p95", "count"} <= set(rollup)
        path = tmp_path / "series.jsonl"
        n = write_series_jsonl(rows, path)
        assert n == len(rows)
        assert read_series_jsonl(path) == rows
        assert len(series_jsonl(rows).splitlines()) == n

    def test_window_dict_restricts_to_breach_window(self):
        system = build_system()
        system.update_plane.start()
        t0 = system.sim.now
        sampler = SeriesSampler(system, SeriesConfig(interval=0.5)).start()
        system.sim.run(until=t0 + 4.0)
        bundles = sampler.window_dict(t0 + 2.0, t0 + 3.0)
        assert bundles
        for b in bundles:
            for t, _ in b["raw"]:
                assert t0 + 2.0 <= t <= t0 + 3.0

    def test_format_renders_federation_gauges(self):
        system = build_system()
        system.update_plane.start()
        sampler = SeriesSampler(system, SeriesConfig(interval=0.5)).start()
        system.sim.run(until=system.sim.now + 2.0)
        text = sampler.format(metrics=["net.sent", "sim.pending"])
        assert "net.sent" in text and "sim.pending" in text
        assert "service.depth" not in text


class TestZeroPerturbation:
    """The tentpole tripwire: sampled and unsampled arms byte-identical."""

    def _run(self, observe):
        tel = Telemetry()
        system = build_system(
            loss=0.1, telemetry=tel,
            service=ServiceConfig(service_time=0.002, queue_limit=16),
        )
        if observe:
            sampler = SeriesSampler(
                system, SeriesConfig(interval=0.25)
            ).start()
            probe = HealthProbe(
                system, interval=0.5, slo=HealthSLO()
            ).start()
            FlightRecorder(tel, sampler=sampler).bind(probe)
        system.update_plane.start()
        system.sim.run(until=system.sim.now + 1.0)
        wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=50, seed=SEED)
        queries = generate_queries(wcfg, num_queries=8)
        retry = RetryPolicy(timeout=1.0, retries=2, backoff_base=0.1)
        results = system.search_many(
            [
                SearchRequest(q, client_node=i % NODES, retry=retry)
                for i, q in enumerate(queries)
            ],
            arrivals=[0.05 * i for i in range(len(queries))],
        )
        return (
            [r.outcome.latency for r in results],
            [sorted(r.outcome.arrivals.items()) for r in results],
            system.network.counters(),
        )

    def test_observed_arm_is_byte_identical(self):
        latencies_off, arrivals_off, counters_off = self._run(False)
        latencies_on, arrivals_on, counters_on = self._run(True)
        assert latencies_on == latencies_off  # exact float equality
        assert arrivals_on == arrivals_off
        assert counters_on == counters_off
