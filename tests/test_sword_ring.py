"""Unit tests for repro.sword.ring and repro.sword.hashing."""

import numpy as np
import pytest

from repro.sword import ChordRouter, LocalityHash, popcount


class TestPopcount:
    def test_known_values(self):
        assert popcount(np.array([0, 1, 2, 3, 255])).tolist() == [0, 1, 1, 2, 8]

    def test_matches_python_bitcount(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 2**40, size=100)
        got = popcount(vals)
        want = [bin(int(v)).count("1") for v in vals]
        assert got.tolist() == want


class TestChordRouter:
    def test_distance_wraps(self):
        r = ChordRouter(10)
        assert r.distance(8, 2) == 4
        assert r.distance(2, 8) == 6
        assert r.distance(5, 5) == 0

    def test_hops_are_popcount_of_distance(self):
        r = ChordRouter(64)
        for src, dst in [(0, 63), (5, 5), (10, 42)]:
            assert r.hops(src, dst) == bin((dst - src) % 64).count("1")

    def test_hops_vector_agrees(self):
        r = ChordRouter(100)
        dsts = np.arange(100)
        vec = r.hops_vector(17, dsts)
        assert all(vec[d] == r.hops(17, int(d)) for d in dsts)

    def test_hops_bounded_by_log(self):
        r = ChordRouter(512)
        rng = np.random.default_rng(1)
        for _ in range(200):
            a, b = rng.integers(0, 512, 2)
            assert r.hops(int(a), int(b)) <= 9  # log2(512)

    def test_path_reaches_destination(self):
        r = ChordRouter(37)
        rng = np.random.default_rng(2)
        for _ in range(100):
            a, b = int(rng.integers(0, 37)), int(rng.integers(0, 37))
            path = r.path(a, b)
            if a == b:
                assert path == []
            else:
                assert path[-1] == b
                assert len(path) == r.hops(a, b)

    def test_path_strictly_approaches(self):
        r = ChordRouter(64)
        path = r.path(3, 60)
        dist = [(60 - p) % 64 for p in [3] + path]
        assert dist == sorted(dist, reverse=True)

    def test_bounds_checked(self):
        r = ChordRouter(8)
        with pytest.raises(IndexError):
            r.hops(0, 8)
        with pytest.raises(ValueError):
            ChordRouter(0)


class TestLocalityHash:
    def test_membership_partition(self):
        h = LocalityHash(20, 4)
        all_members = np.concatenate([h.members(j) for j in range(4)])
        assert sorted(all_members.tolist()) == list(range(20))

    def test_ring_of_server(self):
        h = LocalityHash(20, 4)
        for s in range(20):
            assert s in h.members(h.ring_of_server(s)).tolist()

    def test_ring_sizes_balanced(self):
        h = LocalityHash(22, 4)
        sizes = [h.ring_size(j) for j in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_locality_preserved(self):
        """Nearby values map to the same or adjacent ring members."""
        h = LocalityHash(64, 4)
        a = h.responsible(0, 0.50)
        b = h.responsible(0, 0.501)
        members = h.members(0).tolist()
        ia, ib = members.index(int(a)), members.index(int(b))
        assert abs(ia - ib) <= 1

    def test_responsible_vectorized(self):
        h = LocalityHash(64, 4)
        vals = np.linspace(0, 1, 33)
        dests = h.responsible(1, vals)
        assert all(int(d) % 4 == 1 for d in dests)
        # Monotone: larger value -> same or later member.
        members = h.members(1).tolist()
        idx = [members.index(int(d)) for d in dests]
        assert idx == sorted(idx)

    def test_boundary_values(self):
        h = LocalityHash(64, 4)
        assert int(h.responsible(0, 0.0)) == h.members(0)[0]
        assert int(h.responsible(0, 1.0)) == h.members(0)[-1]

    def test_segment_contiguous_and_covering(self):
        h = LocalityHash(64, 4)
        seg = h.segment(2, 0.25, 0.50)
        members = h.members(2).tolist()
        idx = [members.index(int(s)) for s in seg]
        assert idx == list(range(idx[0], idx[-1] + 1))
        # every value in the range maps inside the segment
        for v in np.linspace(0.25, 0.5, 20):
            assert int(h.responsible(2, v)) in set(int(s) for s in seg)

    def test_segment_size_proportional_to_range(self):
        h = LocalityHash(320, 16)  # 20 servers per ring
        seg = h.segment(0, 0.0, 0.25)
        assert len(seg) in (5, 6)  # ~alpha * n / r

    def test_segment_invalid_range(self):
        h = LocalityHash(16, 4)
        with pytest.raises(ValueError):
            h.segment(0, 0.7, 0.3)

    def test_ring_bounds(self):
        h = LocalityHash(16, 4)
        with pytest.raises(IndexError):
            h.members(4)

    def test_more_attrs_than_servers_rejected(self):
        with pytest.raises(ValueError, match="one server per ring"):
            LocalityHash(3, 5)
