"""RunPlan façade, legacy shims, and the parallel sweep runner.

Covers the canonical-run-API contract: a frozen :class:`RunPlan` is the
one way to describe a run, the legacy positional signatures warn but
produce byte-identical artifacts, and fanning a sweep across a process
pool changes nothing but wall-clock rows.
"""

import warnings

import pytest

from repro.bench import (
    RunPlan,
    SWEEP_SCHEMA,
    comparable_dict,
    merge_artifacts,
    profile_scenario,
    run_plans,
    run_scenario,
    seed_sweep,
    stress_shard_rows,
)
from repro.bench.parallel import resolve_workers, shard_settings
from repro.cli import build_parser
from repro.experiments.config import ExperimentSettings


class TestRunPlan:
    def test_frozen_and_defaulted(self):
        plan = RunPlan("overlay")
        assert plan.scale == "quick"
        assert plan.seed == 1
        assert plan.workers == 1
        with pytest.raises(Exception):
            plan.seed = 2

    def test_with_returns_new_plan(self):
        plan = RunPlan("overlay", scale="smoke")
        other = plan.with_(seed=9, workers=0)
        assert (other.seed, other.workers) == (9, 0)
        assert plan.seed == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RunPlan("no_such_scenario")
        with pytest.raises(ValueError):
            RunPlan("overlay", scale="galactic")
        with pytest.raises(ValueError):
            RunPlan("overlay", seed=True)
        with pytest.raises(ValueError):
            RunPlan("overlay", workers=-1)
        with pytest.raises(ValueError):
            RunPlan("overlay", capacity=0)

    def test_resolved_sweeps_merges_overrides(self):
        plan = RunPlan(
            "overlay", scale="smoke", workers=3, sweeps={"dims": (4,)}
        )
        sweeps = plan.resolved_sweeps()
        assert sweeps["dims"] == (4,)
        assert sweeps["workers"] == 3


class TestLegacyShims:
    def test_legacy_run_scenario_warns_and_matches(self):
        canonical = run_scenario(
            RunPlan("fig8", scale="smoke", seed=2, profile=False)
        )
        with pytest.warns(DeprecationWarning):
            legacy = run_scenario("fig8", "smoke", 2, profile=False)
        assert comparable_dict(canonical) == comparable_dict(legacy)

    def test_legacy_profile_scenario_warns(self):
        with pytest.warns(DeprecationWarning):
            doc = profile_scenario("fig8", "smoke", 2)
        assert "census_fingerprint" in doc

    def test_plan_plus_legacy_args_rejected(self):
        with pytest.raises(TypeError):
            run_scenario(RunPlan("overlay", scale="smoke"), "smoke")
        with pytest.raises(TypeError):
            profile_scenario(RunPlan("overlay", scale="smoke"), seed=4)

    def test_non_plan_non_name_rejected(self):
        with pytest.raises(TypeError):
            run_scenario(42)

    def test_canonical_call_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_scenario(RunPlan("fig8", scale="smoke", seed=2, profile=False))


class TestParallelRunner:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) >= 1
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_run_plans_pool_matches_serial(self):
        plans = seed_sweep(
            RunPlan("fig8", scale="smoke", profile=False), [2, 5]
        )
        serial = run_plans(plans, workers=1)
        pooled = run_plans(plans, workers=2)
        assert [comparable_dict(a) for a in serial] == [
            comparable_dict(a) for a in pooled
        ]

    def test_run_plans_rejects_non_plans(self):
        with pytest.raises(TypeError):
            run_plans(["overlay"], workers=1)

    def test_merge_artifacts(self):
        plans = seed_sweep(
            RunPlan("fig8", scale="smoke", profile=False), [2, 5]
        )
        merged = merge_artifacts(run_plans(plans, workers=1))
        assert merged["schema"] == SWEEP_SCHEMA
        assert merged["seeds"] == [2, 5]
        assert merged["scenarios"] == ["fig8"]
        assert len(merged["runs"]) == 2
        assert merged["metrics"]  # cross-seed means present

    def test_merge_requires_artifacts(self):
        with pytest.raises(ValueError):
            merge_artifacts([])


class TestStressSharding:
    @pytest.fixture(scope="class")
    def settings(self):
        return ExperimentSettings(
            num_nodes=30,
            records_per_node=4,
            num_queries=4,
            runs=1,
            histogram_buckets=20,
            seed=3,
        )

    def test_shard_settings_partitions_seeds(self, settings):
        seeds = {shard_settings(settings, s).seed for s in range(4)}
        assert len(seeds) == 4

    def test_shard_rows_deterministic_across_workers(self, settings):
        sweeps = {"shards": 2, "shard_queries": 2}
        serial = stress_shard_rows(settings, {**sweeps, "workers": 1})
        pooled = stress_shard_rows(settings, {**sweeps, "workers": 2})

        def stable(rows):
            return [
                {k: v for k, v in row.items() if not k.startswith("wall_")}
                for row in rows
            ]

        assert stable(serial) == stable(pooled)
        assert [row["shard"] for row in serial] == [0, 1]
        assert all(row["latency_mean_s"] > 0 for row in serial)
        assert all(row["update_bytes_epoch"] > 0 for row in serial)


class TestSharedCliFlags:
    @pytest.fixture()
    def parser(self):
        return build_parser()

    @pytest.mark.parametrize(
        "verb",
        [
            ["bench", "run", "overlay"],
            ["profile", "overlay"],
            ["trace", "events.jsonl"],
            ["watch"],
            ["postmortem", "pm.json"],
        ],
    )
    def test_common_flags_parse_everywhere(self, parser, verb):
        args = parser.parse_args(
            verb + ["--scale", "smoke", "--seed", "7", "--out", "x"]
        )
        assert args.scale == "smoke"
        assert args.seed == 7
        assert args.out == "x"
        assert args.json is None

    def test_bare_json_means_stdout(self, parser):
        args = parser.parse_args(["postmortem", "pm.json", "--json"])
        assert args.json == "-"
        args = parser.parse_args(["profile", "overlay", "--json", "p.json"])
        assert args.json == "p.json"

    def test_bench_run_parallel_flag(self, parser):
        args = parser.parse_args(["bench", "run", "overlay", "fig8"])
        assert args.scenario == ["overlay", "fig8"]
        assert args.parallel is None
        args = parser.parse_args(["bench", "run", "stress", "--parallel"])
        assert args.parallel == 0  # 0 = one worker per core
        args = parser.parse_args(
            ["bench", "run", "stress", "--parallel", "4"]
        )
        assert args.parallel == 4

    def test_stress_scale_exposed(self, parser):
        args = parser.parse_args(
            ["bench", "run", "stress", "--scale", "stress"]
        )
        assert args.scale == "stress"
