"""Tests for third-party (guest) owner attachment — Figure 1's owner D.

A guest owner has no server of its own: it exports a *summary* to a
server run by someone else, keeps its records private at its own node,
and answers matching queries directly (one extra hop for the client).
"""

import numpy as np
import pytest

from repro.query import Query, RangePredicate
from repro.roads import (
    DenyAllPolicy,
    GuestOwner,
    RetryPolicy,
    RoadsConfig,
    RoadsSystem,
    SearchRequest,
)
from repro.summaries import SummaryConfig
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    make_schema,
    merge_stores,
)
from repro.records import RecordStore

N = 16


@pytest.fixture
def setup():
    wcfg = WorkloadConfig(num_nodes=N, records_per_node=40, seed=31)
    stores = generate_node_stores(wcfg)
    schema = make_schema(wcfg)
    rng = np.random.default_rng(99)
    # A guest with distinctive data: u0 confined to [0.45, 0.55].
    cols = rng.random((600, wcfg.num_attributes))
    cols[:, 0] = 0.45 + 0.1 * rng.random(600)
    guest_store = RecordStore.from_arrays(schema, cols, [], owner="guest-co")
    cfg = RoadsConfig(
        num_nodes=N,
        records_per_node=40,
        max_children=3,
        summary=SummaryConfig(histogram_buckets=100),
        seed=31,
    )
    system = RoadsSystem.build(
        cfg,
        stores,
        guests=[GuestOwner(store=guest_store, attach_to=5, owner_id="guest-co")],
    )
    return wcfg, stores, guest_store, system


class TestAttachment:
    def test_guest_attached_as_summary_only(self, setup):
        _, _, guest_store, system = setup
        server = system.hierarchy.get(5)
        guest = next(o for o in server.owners if o.owner_id == "guest-co")
        assert not guest.controls_server
        assert guest.node_id == N  # first guest slot
        assert guest.summary is not None
        # The attachment server holds a summary, not the records.
        assert guest.exported_size_bytes == guest.summary.encoded_size()
        assert guest.exported_size_bytes < guest_store.size_bytes

    def test_bad_attach_to_rejected(self, setup):
        wcfg, stores, guest_store, _ = setup
        cfg = RoadsConfig(
            num_nodes=N, records_per_node=40, max_children=3, seed=31
        )
        with pytest.raises(ValueError, match="attach_to"):
            RoadsSystem.build(
                cfg, stores, guests=[GuestOwner(guest_store, attach_to=N + 3)]
            )

    def test_guest_export_costs_update_traffic(self, setup):
        _, _, _, system = setup
        report = system.refresh()
        assert report.aggregation.export_bytes > 0


class TestDiscovery:
    def query(self):
        return Query.of(RangePredicate("u0", 0.46, 0.54))

    def test_guest_records_discoverable(self, setup):
        _, stores, guest_store, system = setup
        q = self.query()
        outcome = system.search(SearchRequest(q, client_node=0)).outcome
        want = q.match_count(merge_stores(stores)) + q.match_count(guest_store)
        assert outcome.total_matches == want
        assert any(h.owner_id == "guest-co" for h in outcome.owner_hits)

    def test_query_travels_to_guest_node(self, setup):
        _, _, _, system = setup
        outcome = system.search(SearchRequest(self.query(), client_node=0)).outcome
        assert N in outcome.arrivals  # the guest's own node was contacted
        # The guest hit is recorded at the guest node, after the server.
        hit = next(h for h in outcome.owner_hits if h.owner_id == "guest-co")
        assert hit.server_id == N
        assert hit.arrival_time >= outcome.arrivals[5] if 5 in outcome.arrivals else True

    def test_extra_hop_costs_latency(self, setup):
        """The guest leg adds client->guest latency to the completion."""
        _, _, _, system = setup
        outcome = system.search(SearchRequest(self.query(), client_node=0)).outcome
        # The guest arrival is strictly after the query start.
        assert outcome.arrivals[N] > outcome.started_at

    def test_non_matching_query_skips_guest(self, setup):
        _, _, _, system = setup
        q = Query.of(RangePredicate("u0", 0.95, 0.99))
        outcome = system.search(SearchRequest(q, client_node=0)).outcome
        assert not any(h.owner_id == "guest-co" for h in outcome.owner_hits)
        assert N not in outcome.arrivals


class TestGuestPolicy:
    def test_guest_policy_applies_at_guest(self, setup):
        _, _, guest_store, system = setup
        system.set_policy("guest-co", DenyAllPolicy())
        q = Query.of(RangePredicate("u0", 0.46, 0.54))
        outcome = system.search(SearchRequest(q, client_node=0)).outcome
        guest_hits = [h for h in outcome.owner_hits if h.owner_id == "guest-co"]
        # Still discovered and contacted, but the owner returns nothing:
        # voluntary sharing retains final control at the owner.
        assert guest_hits and guest_hits[0].match_count == 0


class TestOwnerRetry:
    """The guest-owner hop rides the client retry policy under loss."""

    RETRY = RetryPolicy(timeout=0.5, retries=2, backoff_base=0.05)

    def query(self):
        return Query.of(RangePredicate("u0", 0.46, 0.54))

    def _swallow(self, system, pred, *, first_n=None):
        """Silently drop sends matching *pred* (the first ``first_n``,
        or all of them), simulating loss on exactly that leg."""
        net = system.network
        real_send = net.send
        swallowed = []

        def send(src, dst, category, size, **kwargs):
            if pred(src, dst, kwargs.get("kind")) and (
                first_n is None or len(swallowed) < first_n
            ):
                swallowed.append(system.sim.now)
                return None
            return real_send(src, dst, category, size, **kwargs)

        net.send = send
        return swallowed

    def test_lost_owner_query_is_retried(self, setup):
        _, _, _, system = setup
        swallowed = self._swallow(
            system,
            lambda src, dst, kind: dst == N and kind == "query",
            first_n=1,
        )
        result = system.search(
            SearchRequest(self.query(), client_node=0, retry=self.RETRY)
        )
        outcome = result.outcome
        assert len(swallowed) == 1
        assert result.ok
        assert any(h.owner_id == "guest-co" for h in outcome.owner_hits)
        assert N not in outcome.timed_out_servers
        # The hit arrived only after a full client timeout + backoff.
        assert outcome.arrivals[N] > outcome.started_at + self.RETRY.timeout

    def test_silent_owner_leg_times_out_cleanly(self, setup):
        _, _, _, system = setup
        swallowed = self._swallow(
            system, lambda src, dst, kind: dst == N and kind == "query"
        )
        result = system.search(
            SearchRequest(self.query(), client_node=0, retry=self.RETRY)
        )
        outcome = result.outcome
        # Initial attempt + `retries` re-sends, then the client gives up
        # — the search still resolves instead of hanging forever.
        assert len(swallowed) == 1 + self.RETRY.retries
        assert outcome.completed
        assert not result.ok
        assert N in outcome.timed_out_servers
        assert N not in outcome.arrivals
        assert not any(h.owner_id == "guest-co" for h in outcome.owner_hits)

    def test_lost_ack_retries_without_duplicate_hits(self, setup):
        _, _, _, system = setup
        swallowed = self._swallow(
            system,
            lambda src, dst, kind: src == N and kind == "query-ack",
            first_n=1,
        )
        result = system.search(
            SearchRequest(self.query(), client_node=0, retry=self.RETRY)
        )
        outcome = result.outcome
        assert len(swallowed) == 1
        assert result.ok
        # The owner answered twice (original + retry) but the answer is
        # recorded idempotently: exactly one guest hit.
        hits = [h for h in outcome.owner_hits if h.owner_id == "guest-co"]
        assert len(hits) == 1


class TestStorageAccounting:
    def test_attachment_server_counts_guest_summary(self, setup):
        _, _, _, system = setup
        storage = system.storage_bytes_by_server()
        server = system.hierarchy.get(5)
        guest = next(o for o in server.owners if o.owner_id == "guest-co")
        other = system.storage_bytes_by_server()[6]
        assert storage[5] >= guest.summary.encoded_size()
