"""Tests for domain catalog generators and query execution over a lossy
network."""

import numpy as np
import pytest

from repro.query import EqualsPredicate, Query, RangePredicate
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import (
    compute_org_inventory,
    stream_site_catalog,
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)


class TestStreamCatalogs:
    def test_shape_and_schema(self):
        rng = np.random.default_rng(1)
        cat = stream_site_catalog(rng, site=0, sources=80)
        assert len(cat) == 80
        assert "type" in cat.schema and "rate_kbps" in cat.schema
        assert cat.owner == "site-0"

    def test_speciality_dominates(self):
        rng = np.random.default_rng(2)
        cat = stream_site_catalog(rng, site=0, sources=400)
        types = cat.categorical_column("type")
        assert types.count("camera") > 200  # site 0 specializes in cameras

    def test_zero_bias_uniformizes(self):
        rng = np.random.default_rng(3)
        cat = stream_site_catalog(rng, site=0, sources=400, speciality_bias=0.0)
        types = cat.categorical_column("type")
        # roughly uniform across 4 types
        assert max(types.count(t) for t in set(types)) < 180

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            stream_site_catalog(rng, 0, sources=0)
        with pytest.raises(ValueError):
            stream_site_catalog(rng, 0, speciality_bias=1.5)

    def test_values_within_bounds(self):
        rng = np.random.default_rng(4)
        cat = stream_site_catalog(rng, site=1, sources=200)
        assert cat.numeric_column("rate_kbps").max() <= 10_000
        assert cat.numeric_column("uptime").max() <= 1.0


class TestComputeInventories:
    def test_shape(self):
        rng = np.random.default_rng(5)
        inv = compute_org_inventory(rng, org=3, machines=60)
        assert len(inv) == 60
        assert inv.owner == "org-3"
        assert set(inv.categorical_column("arch")) <= {
            "x86_64", "ppc64", "arm64"
        }

    def test_queryable(self):
        rng = np.random.default_rng(6)
        inv = compute_org_inventory(rng, org=0, machines=300)
        q = Query.of(
            EqualsPredicate("arch", "x86_64"),
            RangePredicate("cpus", 8, 512),
        )
        assert 0 < q.match_count(inv) < 300

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_org_inventory(np.random.default_rng(0), 0, machines=0)


class TestQueriesOverLossyNetwork:
    def test_queries_complete_despite_loss(self):
        """Message loss turns into timeouts, not hangs; results are a
        subset of the truth (lost legs are reported as timed out)."""
        wcfg = WorkloadConfig(num_nodes=20, records_per_node=50, seed=91)
        stores = generate_node_stores(wcfg)
        system = RoadsSystem.build(
            RoadsConfig(num_nodes=20, records_per_node=50, max_children=3,
                        summary=SummaryConfig(histogram_buckets=60), seed=91),
            stores,
        )
        system.network.loss_rate = 0.15
        system.network._rng = np.random.default_rng(92)
        reference = merge_stores(stores)
        complete, lossy = 0, 0
        for q in generate_queries(wcfg, num_queries=12, dimensions=2):
            o = system.search(SearchRequest(q, client_node=0)).outcome
            assert o.completed
            assert o.total_matches <= q.match_count(reference)
            if o.timed_out_servers:
                lossy += 1
            if o.total_matches == q.match_count(reference):
                complete += 1
        # With 15% loss, some queries lose legs but most still finish whole.
        assert complete >= 4

    def test_zero_loss_is_exact(self):
        wcfg = WorkloadConfig(num_nodes=20, records_per_node=50, seed=91)
        stores = generate_node_stores(wcfg)
        system = RoadsSystem.build(
            RoadsConfig(num_nodes=20, records_per_node=50, max_children=3,
                        summary=SummaryConfig(histogram_buckets=60), seed=91),
            stores,
        )
        reference = merge_stores(stores)
        for q in generate_queries(wcfg, num_queries=6, dimensions=2):
            o = system.search(SearchRequest(q, client_node=0)).outcome
            assert o.total_matches == q.match_count(reference)
            assert not o.timed_out_servers
