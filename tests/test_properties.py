"""Property-based tests (hypothesis) on core data structures and invariants.

The library's correctness rests on a handful of algebraic properties:
summaries merge like a commutative monoid, never produce false negatives,
coarsening only widens answers, Chord routing always terminates within
its hop bound, and the balanced join always yields a well-formed tree.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hierarchy import Server, build_hierarchy
from repro.overlay import coverage_ids, replication_sources
from repro.query import EqualsPredicate, Query, RangePredicate
from repro.records import RecordStore, Schema, numeric
from repro.summaries import (
    BloomFilterSummary,
    HistogramSummary,
    ValueSetSummary,
    coarsen,
)
from repro.sword import ChordRouter, LocalityHash


unit_floats = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(unit_floats, min_size=0, max_size=60)
bucket_counts = st.sampled_from([1, 2, 7, 16, 64, 100, 1000])


class TestHistogramProperties:
    @given(values=value_lists, buckets=bucket_counts, lo=unit_floats, hi=unit_floats)
    @settings(max_examples=150, deadline=None)
    def test_no_false_negatives(self, values, buckets, lo, hi):
        assume(lo <= hi)
        h = HistogramSummary.from_values("a", values, buckets)
        arr = np.asarray(values)
        actually_matches = bool(
            arr.size and ((arr >= lo) & (arr <= hi)).any()
        )
        if actually_matches:
            assert h.may_match(RangePredicate("a", lo, hi))

    @given(a=value_lists, b=value_lists, buckets=bucket_counts)
    @settings(max_examples=80, deadline=None)
    def test_merge_commutative(self, a, b, buckets):
        ha = HistogramSummary.from_values("x", a, buckets)
        hb = HistogramSummary.from_values("x", b, buckets)
        assert ha.merge(hb) == hb.merge(ha)

    @given(a=value_lists, b=value_lists, c=value_lists, buckets=bucket_counts)
    @settings(max_examples=60, deadline=None)
    def test_merge_associative(self, a, b, c, buckets):
        ha = HistogramSummary.from_values("x", a, buckets)
        hb = HistogramSummary.from_values("x", b, buckets)
        hc = HistogramSummary.from_values("x", c, buckets)
        assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))

    @given(values=value_lists, buckets=bucket_counts)
    @settings(max_examples=80, deadline=None)
    def test_empty_is_identity(self, values, buckets):
        h = HistogramSummary.from_values("x", values, buckets)
        empty = HistogramSummary("x", buckets)
        assert h.merge(empty) == h

    @given(values=value_lists, buckets=st.sampled_from([8, 16, 64]),
           lo=unit_floats, hi=unit_floats)
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_union(self, values, buckets, lo, hi):
        """Summarizing the union == merging the summaries."""
        assume(lo <= hi)
        mid = len(values) // 2
        ha = HistogramSummary.from_values("x", values[:mid], buckets)
        hb = HistogramSummary.from_values("x", values[mid:], buckets)
        hu = HistogramSummary.from_values("x", values, buckets)
        assert ha.merge(hb) == hu

    @given(values=value_lists, lo=unit_floats, hi=unit_floats)
    @settings(max_examples=100, deadline=None)
    def test_coarsening_only_widens(self, values, lo, hi):
        assume(lo <= hi)
        fine = HistogramSummary.from_values("x", values, 64)
        coarse = coarsen(coarsen(fine))
        pred = RangePredicate("x", lo, hi)
        if fine.may_match(pred):
            assert coarse.may_match(pred)

    @given(values=value_lists, buckets=bucket_counts,
           lo=unit_floats, hi=unit_floats)
    @settings(max_examples=100, deadline=None)
    def test_count_in_range_upper_bounds_truth(self, values, buckets, lo, hi):
        assume(lo <= hi)
        h = HistogramSummary.from_values("x", values, buckets)
        arr = np.asarray(values)
        exact = int(((arr >= lo) & (arr <= hi)).sum()) if arr.size else 0
        assert h.count_in_range(lo, hi) >= exact


names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=12,
)
name_lists = st.lists(names, min_size=0, max_size=40)


class TestSetAndBloomProperties:
    @given(a=name_lists, b=name_lists)
    @settings(max_examples=80, deadline=None)
    def test_valueset_merge_is_union(self, a, b):
        sa = ValueSetSummary.from_values("e", a)
        sb = ValueSetSummary.from_values("e", b)
        assert sa.merge(sb).values == frozenset(a) | frozenset(b)

    @given(values=name_lists, probe=names)
    @settings(max_examples=80, deadline=None)
    def test_valueset_exact(self, values, probe):
        s = ValueSetSummary.from_values("e", values)
        assert s.may_match(EqualsPredicate("e", probe)) == (probe in values)

    @given(values=name_lists)
    @settings(max_examples=60, deadline=None)
    def test_bloom_no_false_negatives(self, values):
        f = BloomFilterSummary.from_values("e", values, 512, 3)
        for v in values:
            assert f.contains(v)

    @given(a=name_lists, b=name_lists, probe=names)
    @settings(max_examples=60, deadline=None)
    def test_bloom_merge_superset(self, a, b, probe):
        """Anything matched by either input matches the merge."""
        fa = BloomFilterSummary.from_values("e", a, 512, 3)
        fb = BloomFilterSummary.from_values("e", b, 512, 3)
        merged = fa.merge(fb)
        if fa.contains(probe) or fb.contains(probe):
            assert merged.contains(probe)


class TestChordProperties:
    @given(n=st.integers(min_value=1, max_value=300),
           a=st.integers(min_value=0, max_value=299),
           b=st.integers(min_value=0, max_value=299))
    @settings(max_examples=150, deadline=None)
    def test_path_terminates_at_destination(self, n, a, b):
        assume(a < n and b < n)
        r = ChordRouter(n)
        path = r.path(a, b)
        assert len(path) == r.hops(a, b)
        assert (path[-1] if path else a) == b
        assert len(path) <= max(1, int(np.ceil(np.log2(n))) + 1)

    @given(n=st.integers(min_value=2, max_value=200),
           r=st.integers(min_value=1, max_value=16),
           v=unit_floats)
    @settings(max_examples=120, deadline=None)
    def test_responsible_server_in_declared_ring(self, n, r, v):
        assume(n >= r)
        h = LocalityHash(n, r)
        for ring in range(r):
            dest = int(h.responsible(ring, v))
            assert dest % r == ring

    @given(n=st.integers(min_value=4, max_value=120),
           r=st.integers(min_value=1, max_value=8),
           lo=unit_floats, hi=unit_floats)
    @settings(max_examples=120, deadline=None)
    def test_segment_covers_range(self, n, r, lo, hi):
        assume(n >= r and lo <= hi)
        h = LocalityHash(n, r)
        seg = set(int(s) for s in h.segment(0, lo, hi))
        for v in np.linspace(lo, hi, 7):
            assert int(h.responsible(0, float(v))) in seg


class TestHierarchyProperties:
    @given(n=st.integers(min_value=1, max_value=80),
           k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_join_builds_valid_tree(self, n, k):
        h = build_hierarchy(Server(i, max_children=k) for i in range(n))
        h.check_invariants()
        assert len(h) == n

    @given(n=st.integers(min_value=1, max_value=60),
           k=st.integers(min_value=2, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_depth_logarithmic(self, n, k):
        h = build_hierarchy(Server(i, max_children=k) for i in range(n))
        # levels L satisfies sum_{i<L} k^(i-1) capacity >= n
        levels = h.levels
        capacity = sum(k**i for i in range(levels))
        assert capacity >= n

    @given(n=st.integers(min_value=1, max_value=60),
           k=st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_overlay_coverage_total(self, n, k):
        """Replication sources + own subtree cover the whole hierarchy
        from every server — the overlay's defining invariant."""
        h = build_hierarchy(Server(i, max_children=k) for i in range(n))
        all_ids = {s.server_id for s in h}
        for server in h:
            assert coverage_ids(server) == all_ids

    @given(n=st.integers(min_value=2, max_value=60),
           k=st.integers(min_value=2, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_disjoint_cover_partition(self, n, k):
        """Own subtree + sibling branches + ancestor-sibling branches +
        ancestors partition the servers (no double-visits in routing)."""
        h = build_hierarchy(Server(i, max_children=k) for i in range(n))
        for server in h:
            pieces = [
                {x.server_id for x in server.iter_subtree()}
            ]
            for src in replication_sources(server):
                if src.server_id in server.root_path:
                    pieces.append({src.server_id})  # ancestor: local only
                else:
                    pieces.append(
                        {x.server_id for x in src.iter_subtree()}
                    )
            total = sum(len(p) for p in pieces)
            union = set().union(*pieces)
            assert total == len(union), "cover pieces overlap"
            assert union == {s.server_id for s in h}
