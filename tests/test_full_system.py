"""Whole-system soak test: churn + record drift + lossy network, at once.

The strongest integration claim in the repo: a ROADS federation survives
simultaneous server crash/recover churn, continuously drifting records,
and a lossy wide-area network — and after quiescing and one summary
refresh, answers every query exactly over the surviving membership.
"""

import numpy as np
import pytest

from repro.hierarchy import MaintenanceConfig
from repro.hierarchy.churn import ChurnConfig, ChurnProcess
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import (
    DynamicsConfig,
    RecordDynamics,
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)

N = 24


@pytest.fixture(scope="module")
def soak():
    wcfg = WorkloadConfig(num_nodes=N, records_per_node=60, seed=101)
    stores = generate_node_stores(wcfg)
    system = RoadsSystem.build(
        RoadsConfig(
            num_nodes=N,
            records_per_node=60,
            max_children=3,
            summary=SummaryConfig(histogram_buckets=60),
            delta_updates=True,
            seed=101,
        ),
        stores,
    )
    # Inject 5% message loss under the running protocols.
    system.network.loss_rate = 0.05
    system.network._rng = np.random.default_rng(103)
    proto = system.enable_maintenance(
        MaintenanceConfig(heartbeat_interval=2.0, miss_threshold=5,
                          check_interval=2.0)
    )
    churn = ChurnProcess(
        system.sim,
        system.network,
        system.hierarchy,
        proto,
        np.random.default_rng(104),
        ChurnConfig(
            mean_time_to_failure=150.0,
            mean_time_to_recovery=40.0,
            min_alive=5,
        ),
    )
    dynamics = RecordDynamics(
        system.sim,
        stores,
        np.random.default_rng(105),
        DynamicsConfig(record_interval=6.0, step_sigma=0.02),
    )
    # Soak: ten minutes of simulated chaos.
    system.sim.run(until=600.0)
    return wcfg, stores, system, proto, churn, dynamics


class TestSoak:
    def test_chaos_actually_happened(self, soak):
        _, _, system, proto, churn, dynamics = soak
        assert churn.stats.crashes >= 3
        assert dynamics.epochs >= 90
        assert system.network.counters()["lost"] > 0
        assert proto.failures_detected >= 1

    def test_membership_healthy_after_quiesce(self, soak):
        _, _, system, proto, churn, dynamics = soak
        churn.stop()
        dynamics.pause()
        system.network.loss_rate = 0.0
        system.sim.run(until=system.sim.now + 120.0)
        system.hierarchy.check_invariants()
        for s in system.hierarchy:
            if s.alive and s is not system.hierarchy.root:
                assert s.parent is not None

    def test_exact_queries_after_quiesce(self, soak):
        wcfg, stores, system, proto, churn, dynamics = soak
        churn.stop()
        dynamics.pause()
        system.network.loss_rate = 0.0
        system.sim.run(until=system.sim.now + 120.0)
        system.refresh()
        alive_ids = sorted(s.server_id for s in system.hierarchy if s.alive)
        assert len(alive_ids) >= 5
        reference = merge_stores([stores[i] for i in alive_ids])
        queries = generate_queries(wcfg, num_queries=8, dimensions=2)
        for q in queries:
            o = system.search(SearchRequest(q, client_node=alive_ids[0])).outcome
            assert o.completed
            assert o.total_matches == q.match_count(reference)

    def test_overlay_still_covers_after_soak(self, soak):
        _, _, system, proto, churn, dynamics = soak
        churn.stop()
        dynamics.pause()
        system.sim.run(until=system.sim.now + 120.0)
        system.refresh()
        system.overlay.check_coverage()
