"""Tests for repro.hierarchy.maintenance (heartbeats, failures, election)."""

import numpy as np
import pytest

from repro.hierarchy import (
    MaintenanceConfig,
    MaintenanceProtocol,
    Server,
    build_hierarchy,
)
from repro.net import DelaySpace, Network
from repro.sim import MAINTENANCE, MetricsCollector, Simulator


def make_system(n=10, k=3, seed=0):
    sim = Simulator()
    ds = DelaySpace(n, np.random.default_rng(seed), jitter_ms=0.0)
    net = Network(sim, ds, MetricsCollector())
    h = build_hierarchy(Server(i, max_children=k) for i in range(n))
    cfg = MaintenanceConfig(heartbeat_interval=1.0, miss_threshold=3,
                            check_interval=1.0)
    proto = MaintenanceProtocol(sim, net, h, cfg)
    return sim, net, h, proto


def alive_reachable(h):
    return {s.server_id for s in h.root.iter_subtree() if s.alive}


class TestHeartbeats:
    def test_traffic_flows(self):
        sim, net, h, proto = make_system()
        sim.run(until=5.0)
        assert net.metrics.messages(MAINTENANCE) > 0

    def test_no_false_failures_in_steady_state(self):
        sim, net, h, proto = make_system()
        sim.run(until=30.0)
        assert proto.failures_detected == 0
        h.check_invariants()


class TestLeafFailure:
    def test_parent_drops_failed_leaf(self):
        sim, net, h, proto = make_system()
        leaf = next(s for s in h.leaves())
        parent = leaf.parent
        proto.fail(leaf)
        sim.run(until=20.0)
        assert leaf.server_id not in parent.child_ids()
        assert proto.failures_detected >= 1


class TestInternalFailure:
    def test_children_rejoin(self):
        sim, net, h, proto = make_system(n=13, k=3)
        # Fail an internal (level-1) server with children.
        victim = next(
            s for s in h if not s.is_root and s.children
        )
        orphan_ids = [c.server_id for c in victim.children]
        proto.fail(victim)
        sim.run(until=40.0)
        reachable = alive_reachable(h)
        for oid in orphan_ids:
            assert oid in reachable, f"orphan {oid} not reattached"
        assert proto.rejoins >= len(orphan_ids)
        assert not proto.orphaned

    def test_no_loops_after_recovery(self):
        sim, net, h, proto = make_system(n=13, k=3)
        victim = next(s for s in h if not s.is_root and s.children)
        proto.fail(victim)
        sim.run(until=40.0)
        # Walk up from every alive node; must terminate at the root.
        for s in h:
            if not s.alive or s.server_id == victim.server_id:
                continue
            seen = set()
            node = s
            while node.parent is not None:
                assert node.server_id not in seen
                seen.add(node.server_id)
                node = node.parent
            assert node is h.root


class TestRootFailure:
    def test_smallest_id_child_elected(self):
        sim, net, h, proto = make_system(n=10, k=3)
        old_root = h.root
        expected_new_root = min(old_root.child_ids())
        # Let a few heartbeats flow so children learn the sibling list.
        sim.run(until=3.0)
        proto.fail(old_root)
        sim.run(until=60.0)
        assert proto.root_elections >= 1
        assert h.root.server_id == expected_new_root
        assert h.root.parent is None

    def test_membership_recovers(self):
        sim, net, h, proto = make_system(n=10, k=3)
        old_root = h.root
        sim.run(until=3.0)
        proto.fail(old_root)
        sim.run(until=60.0)
        reachable = alive_reachable(h)
        expected = {s.server_id for s in h if s.alive}
        assert reachable == expected
        assert old_root.server_id not in reachable


class TestGracefulLeave:
    def test_children_reattach_to_grandparent_side(self):
        sim, net, h, proto = make_system(n=13, k=3)
        leaver = next(s for s in h if not s.is_root and s.children)
        orphans = [c.server_id for c in leaver.children]
        proto.leave(leaver)
        assert leaver.server_id not in h
        reachable = alive_reachable(h)
        for oid in orphans:
            assert oid in reachable
        h.check_invariants()

    def test_leaf_leave(self):
        sim, net, h, proto = make_system()
        leaf = h.leaves()[0]
        proto.leave(leaf)
        assert leaf.server_id not in h
        h.check_invariants()


class TestConfig:
    def test_failure_timeout(self):
        cfg = MaintenanceConfig(heartbeat_interval=2.0, miss_threshold=4)
        assert cfg.failure_timeout == 8.0

    def test_stop_halts_traffic(self):
        sim, net, h, proto = make_system()
        sim.run(until=2.0)
        before = net.metrics.messages(MAINTENANCE)
        proto.stop()
        sim.run(until=20.0)
        assert net.metrics.messages(MAINTENANCE) == before
