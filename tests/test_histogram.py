"""Unit tests for repro.summaries.histogram."""

import numpy as np
import pytest

from repro.query import EqualsPredicate, RangePredicate
from repro.summaries import HistogramSummary, SummaryMergeError


class TestConstruction:
    def test_empty(self):
        h = HistogramSummary("a", 10)
        assert h.is_empty
        assert h.total == 0
        assert h.buckets == 10

    def test_invalid_buckets(self):
        with pytest.raises(ValueError, match="bucket"):
            HistogramSummary("a", 0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            HistogramSummary("a", 10, (1.0, 0.0))

    def test_invalid_encoding(self):
        with pytest.raises(ValueError, match="encoding"):
            HistogramSummary("a", 10, encoding="zip")

    def test_counts_validation(self):
        with pytest.raises(ValueError, match="shape"):
            HistogramSummary("a", 10, counts=np.zeros(5))
        with pytest.raises(ValueError, match="non-negative"):
            HistogramSummary("a", 3, counts=np.array([1, -1, 0]))

    def test_from_values(self):
        h = HistogramSummary.from_values("a", [0.05, 0.15, 0.95], 10)
        assert h.total == 3
        assert h.counts[0] == 1 and h.counts[1] == 1 and h.counts[9] == 1

    def test_values_clipped_into_domain(self):
        h = HistogramSummary.from_values("a", [-5.0, 7.0], 10)
        assert h.counts[0] == 1 and h.counts[9] == 1

    def test_value_at_upper_bound_goes_to_last_bucket(self):
        h = HistogramSummary.from_values("a", [1.0], 10)
        assert h.counts[9] == 1

    def test_custom_bounds(self):
        h = HistogramSummary.from_values("rate", [500.0], 10, (0.0, 1000.0))
        assert h.counts[5] == 1


class TestMayMatch:
    def test_hit(self):
        h = HistogramSummary.from_values("a", [0.42], 100)
        assert h.may_match(RangePredicate("a", 0.4, 0.45))

    def test_miss(self):
        h = HistogramSummary.from_values("a", [0.42], 100)
        assert not h.may_match(RangePredicate("a", 0.6, 0.9))

    def test_no_false_negatives_exhaustive(self):
        rng = np.random.default_rng(3)
        values = rng.random(200)
        h = HistogramSummary.from_values("a", values, 57)
        for _ in range(200):
            lo = rng.random() * 0.9
            hi = lo + rng.random() * (1 - lo)
            pred = RangePredicate("a", lo, hi)
            actually = bool(((values >= lo) & (values <= hi)).any())
            if actually:
                assert h.may_match(pred)

    def test_false_positive_possible(self):
        # Values at both ends of one bucket's neighbours: a range falling
        # entirely inside an occupied bucket but between values matches.
        h = HistogramSummary.from_values("a", [0.101, 0.199], 10)
        assert h.may_match(RangePredicate("a", 0.14, 0.16))  # bucket 1 occupied

    def test_disjoint_range_is_false(self):
        h = HistogramSummary.from_values("rate", [5.0], 10, (0.0, 10.0))
        assert not h.may_match(RangePredicate("rate", 20.0, 30.0))

    def test_equality_predicate_rejected(self):
        h = HistogramSummary("a", 10)
        with pytest.raises(TypeError, match="cannot evaluate equality"):
            h.may_match(EqualsPredicate("c", "x"))


class TestMerge:
    def test_counts_add(self):
        a = HistogramSummary.from_values("a", [0.1, 0.2], 10)
        b = HistogramSummary.from_values("a", [0.1, 0.9], 10)
        m = a.merge(b)
        assert m.total == 4
        assert m.counts[1] == 2

    def test_merge_commutative(self):
        a = HistogramSummary.from_values("a", [0.1], 10)
        b = HistogramSummary.from_values("a", [0.9], 10)
        assert a.merge(b) == b.merge(a)

    def test_merge_does_not_mutate(self):
        a = HistogramSummary.from_values("a", [0.1], 10)
        b = HistogramSummary.from_values("a", [0.9], 10)
        a.merge(b)
        assert a.total == 1 and b.total == 1

    def test_incompatible_buckets(self):
        with pytest.raises(SummaryMergeError):
            HistogramSummary("a", 10).merge(HistogramSummary("a", 20))

    def test_incompatible_attribute(self):
        with pytest.raises(SummaryMergeError):
            HistogramSummary("a", 10).merge(HistogramSummary("b", 10))

    def test_incompatible_type(self):
        from repro.summaries import ValueSetSummary

        with pytest.raises(SummaryMergeError):
            HistogramSummary("a", 10).merge(ValueSetSummary("a"))


class TestEncoding:
    def test_dense_constant_size(self):
        small = HistogramSummary.from_values("a", [0.5], 100, encoding="dense")
        big = HistogramSummary.from_values(
            "a", np.random.default_rng(0).random(10000), 100, encoding="dense"
        )
        assert small.encoded_size() == big.encoded_size()

    def test_sparse_scales_with_occupancy(self):
        one = HistogramSummary.from_values("a", [0.5], 100, encoding="sparse")
        many = HistogramSummary.from_values(
            "a", np.linspace(0, 1, 50), 100, encoding="sparse"
        )
        assert many.encoded_size() > one.encoded_size()

    def test_bitmap_smallest_for_full_histograms(self):
        values = np.random.default_rng(1).random(5000)
        kwargs = dict(buckets=1000)
        dense = HistogramSummary.from_values("a", values, 1000, encoding="dense")
        sparse = HistogramSummary.from_values("a", values, 1000, encoding="sparse")
        bitmap = HistogramSummary.from_values("a", values, 1000, encoding="bitmap")
        assert bitmap.encoded_size() < dense.encoded_size()
        assert bitmap.encoded_size() < sparse.encoded_size()

    def test_encoding_does_not_change_semantics(self):
        values = [0.2, 0.7]
        pred = RangePredicate("a", 0.6, 0.8)
        for enc in ("dense", "sparse", "bitmap"):
            h = HistogramSummary.from_values("a", values, 50, encoding=enc)
            assert h.may_match(pred)


class TestCountInRange:
    def test_upper_bound(self):
        values = np.random.default_rng(5).random(500)
        h = HistogramSummary.from_values("a", values, 40)
        lo, hi = 0.33, 0.71
        exact = int(((values >= lo) & (values <= hi)).sum())
        assert h.count_in_range(lo, hi) >= exact

    def test_full_range_is_total(self):
        h = HistogramSummary.from_values("a", [0.1, 0.5, 0.9], 10)
        assert h.count_in_range(0.0, 1.0) == 3

    def test_disjoint_range(self):
        h = HistogramSummary.from_values("rate", [1.0], 10, (0.0, 10.0))
        assert h.count_in_range(50.0, 60.0) == 0


class TestCopy:
    def test_copy_independent(self):
        h = HistogramSummary.from_values("a", [0.5], 10)
        c = h.copy()
        c.add_values([0.6])
        assert h.total == 1 and c.total == 2
