"""Tests for the telemetry subsystem: spans, bus, histograms, metrics."""

import numpy as np
import pytest

from repro.net import DelaySpace, Network
from repro.query import Query, RangePredicate
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.sim import MAINTENANCE, QUERY, UPDATE, MetricsCollector, Simulator
from repro.summaries import SummaryConfig
from repro.telemetry import (
    NULL_TELEMETRY,
    EventBus,
    MetricsRegistry,
    StreamingHistogram,
    Telemetry,
    TelemetryEvent,
    TraceEvent,
)
from repro.workload import WorkloadConfig, generate_node_stores


def build_system(telemetry=None, num_nodes=16, seed=81):
    wcfg = WorkloadConfig(num_nodes=num_nodes, records_per_node=40, seed=seed)
    stores = generate_node_stores(wcfg)
    return RoadsSystem.build(
        RoadsConfig(num_nodes=num_nodes, records_per_node=40, max_children=3,
                    summary=SummaryConfig(histogram_buckets=60), seed=seed),
        stores,
        telemetry=telemetry,
    )


def wide_query():
    return Query.of(RangePredicate("u0", 0.0, 1.0))


class TestSpans:
    def test_nesting_parent_child_ids(self):
        tel = Telemetry()
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tel.span("inner2") as inner2:
                assert inner2.parent_id == outer.span_id
        assert outer.parent_id == 0
        names = [e.name for e in tel.events()]
        # Spans are emitted at close: innermost first.
        assert names == ["inner", "inner2", "outer"]

    def test_sim_clock_timestamps(self):
        sim = Simulator()
        tel = Telemetry(clock=lambda: sim.now)
        with tel.span("epoch") as span:
            sim.schedule(2.5, lambda: None)
            sim.run()
        ev = tel.events()[0]
        assert ev.ts == 0.0
        assert ev.dur == pytest.approx(2.5)
        assert span.duration == pytest.approx(2.5)

    def test_events_inherit_open_span_parent(self):
        tel = Telemetry()
        with tel.span("outer") as outer:
            ev = tel.event("ping", x=1)
        assert ev.parent_id == outer.span_id
        assert ev.tags == {"x": 1}

    def test_span_tags_and_annotate(self):
        tel = Telemetry()
        with tel.span("s", server=7) as span:
            span.annotate(extra="yes")
        emitted = tel.events()[0]
        assert emitted.tags == {"server": 7, "extra": "yes"}

    def test_emit_span_interval(self):
        tel = Telemetry()
        tel.emit_span("transit", 1.0, 1.5, server=3)
        ev = tel.events()[0]
        assert (ev.ts, ev.dur, ev.kind) == (1.0, 0.5, "span")

    def test_disabled_records_nothing(self):
        tel = Telemetry(enabled=False)
        with tel.span("s"):
            tel.event("e")
        assert len(tel) == 0

    def test_null_telemetry_is_inert(self):
        span = NULL_TELEMETRY.span("anything", server=1)
        with span:
            NULL_TELEMETRY.event("e")
        assert len(NULL_TELEMETRY) == 0


class TestEventBus:
    def test_ring_buffer_eviction(self):
        bus = EventBus(capacity=3)
        for i in range(5):
            bus.emit(TelemetryEvent(ts=float(i), name=f"e{i}"))
        assert len(bus) == 3
        assert bus.emitted == 5
        assert bus.dropped == 2
        assert [e.name for e in bus.events()] == ["e2", "e3", "e4"]

    def test_subscribe_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe(seen.append)
        bus.emit(TelemetryEvent(ts=0.0, name="a"))
        unsub()
        bus.emit(TelemetryEvent(ts=0.0, name="b"))
        assert [e.name for e in seen] == ["a"]

    def test_drain(self):
        bus = EventBus()
        bus.emit(TelemetryEvent(ts=0.0, name="a"))
        assert [e.name for e in bus.drain()] == ["a"]
        assert len(bus) == 0


class TestStreamingHistogram:
    @pytest.mark.parametrize("dist", ["uniform", "lognormal"])
    def test_percentiles_vs_numpy(self, dist):
        rng = np.random.default_rng(3)
        if dist == "uniform":
            samples = rng.uniform(0.001, 2.0, size=20_000)
        else:
            samples = rng.lognormal(mean=-2.0, sigma=1.0, size=20_000)
        h = StreamingHistogram()
        h.record_many(samples)
        for pct in (50, 90, 95, 99):
            ref = float(np.percentile(samples, pct))
            got = h.percentile(pct)
            assert got == pytest.approx(ref, rel=0.05), (pct, ref, got)

    def test_mean_min_max_exact(self):
        h = StreamingHistogram()
        h.record_many([0.1, 0.2, 0.3])
        assert h.mean == pytest.approx(0.2)
        assert h.min == pytest.approx(0.1)
        assert h.max == pytest.approx(0.3)

    def test_empty(self):
        h = StreamingHistogram()
        assert h.percentile(99) == 0.0
        assert h.summary()["count"] == 0

    def test_merge(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        a.record_many([0.1] * 50)
        b.record_many([1.0] * 50)
        a.merge(b)
        assert a.count == 100
        assert a.percentile(25) == pytest.approx(0.1, rel=0.05)
        assert a.percentile(75) == pytest.approx(1.0, rel=0.05)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram().record(-1.0)

    def test_percentile_extremes_clamp_to_min_max(self):
        h = StreamingHistogram()
        h.record_many([0.1, 0.5, 2.5])
        assert h.percentile(0) == pytest.approx(h.min)
        assert h.percentile(100) == pytest.approx(h.max)

    def test_empty_merge_keeps_sentinels(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        a.merge(b)
        assert a.count == 0
        assert a.min == float("inf") and a.max == float("-inf")
        assert a.percentile(50) == 0.0
        assert a.summary()["count"] == 0

    def test_merge_into_empty_adopts_min_max(self):
        src = StreamingHistogram()
        src.record(0.7)
        dst = StreamingHistogram()
        dst.merge(src)
        assert dst.count == 1
        assert dst.min == pytest.approx(0.7)
        assert dst.max == pytest.approx(0.7)
        assert dst.percentile(0) == pytest.approx(0.7)
        assert dst.percentile(100) == pytest.approx(0.7)


class TestMetricsRegistry:
    def test_per_server_attribution(self):
        r = MetricsRegistry()
        r.count_message("query", 100, server=1, phase="forward")
        r.count_message("query", 50, server=1, phase="forward")
        r.count_message("query", 30, server=2, phase="forward")
        r.count_message("query", 10, server=1, phase="response")
        assert r.per_server("query", "forward") == {1: (2, 150), 2: (1, 30)}
        assert r.per_server("query") == {1: (3, 160), 2: (1, 30)}
        assert r.bytes_total("query") == 190
        assert r.messages_total("query") == 4

    def test_uncount_rolls_back(self):
        r = MetricsRegistry()
        r.count_message("query", 100, server=1)
        r.uncount_message("query", 100, server=1)
        assert r.bytes_total("query") == 0
        assert r.messages_total("query") == 0

    def test_reset_selected_categories(self):
        r = MetricsRegistry()
        r.count_message("query", 10, server=1)
        r.count_message("update", 20, server=1)
        r.reset(["query"])
        assert r.bytes_total("query") == 0
        assert r.bytes_total("update") == 20

    def test_rows_deterministic_order(self):
        r = MetricsRegistry()
        r.count_message("query", 1, server=2)
        r.count_message("query", 1, server=1)
        r.count_message("query", 1)
        rows = r.rows()
        assert [row["server"] for row in rows] == [None, 1, 2]

    def test_merged_histogram(self):
        r = MetricsRegistry()
        r.observe("lat", 0.1, server=1)
        r.observe("lat", 0.2, server=2)
        assert r.merged_histogram("lat").count == 2


class TestMetricsCollectorFacade:
    def test_plain_dict_views_no_mutation_on_read(self):
        m = MetricsCollector()
        m.record_message(UPDATE, 100)
        view = m.bytes_by_category
        assert isinstance(view, dict)
        assert view.get("missing") is None
        # Reading an absent category must not materialise an entry.
        assert m.bytes("missing") == 0
        assert "missing" not in m.bytes_by_category
        assert "missing" not in m.snapshot()

    def test_server_attribution_through_facade(self):
        m = MetricsCollector()
        m.record_message(QUERY, 64, server=3, phase="forward")
        m.record_message(QUERY, 64)
        assert m.bytes(QUERY) == 128
        assert m.per_server(QUERY, "forward") == {3: (1, 64)}

    def test_latency_feeds_histogram(self):
        m = MetricsCollector()
        m.record_latency(0.25, server=4)
        assert m.mean_latency() == pytest.approx(0.25)
        assert m.registry.histogram("latency", server=4).count == 1


class TestPerNetworkMessageIds:
    def test_independent_networks_repeat_ids(self):
        def ids():
            sim = Simulator()
            net = Network(sim, DelaySpace(4, np.random.default_rng(0)),
                          MetricsCollector())
            return [net.send(0, 1, QUERY, 8).msg_id for _ in range(3)]

        assert ids() == ids() == [0, 1, 2]

    def test_rollback_on_failed_sender(self):
        sim = Simulator()
        net = Network(sim, DelaySpace(4, np.random.default_rng(0)),
                      MetricsCollector())
        net.fail_node(0)
        net.send(0, 1, QUERY, 100)
        assert net.metrics.bytes(QUERY) == 0
        assert net.metrics.messages(QUERY) == 0
        assert net.metrics.per_server(QUERY) == {}


class TestSystemIntegration:
    def test_trace_events_back_compat_tuple_view(self):
        system = build_system()
        o = system.search(SearchRequest(wide_query(), client_node=0, trace=True)).outcome
        assert o.trace_events
        assert o.trace is o.trace_events
        for entry in o.trace:
            t, event, subject, detail = entry
            assert entry[0] == t and entry[1] == event
            assert entry[3] == detail and len(entry) == 4
            assert isinstance(entry, TraceEvent)

    def test_trace_false_adds_zero_events(self):
        tel = Telemetry()
        system = build_system(telemetry=tel)
        baseline = tel.bus.emitted
        o = system.search(SearchRequest(wide_query(), client_node=0, trace=False)).outcome
        assert o.trace_events == []
        assert o.trace == []
        # The bus still sees query.* structured events...
        assert tel.bus.emitted > baseline
        # ...but a system without telemetry records nothing anywhere.
        plain = build_system()
        o2 = plain.search(SearchRequest(wide_query(), client_node=0, trace=False)).outcome
        assert o2.trace == []

    def test_disabled_telemetry_records_zero_events(self):
        tel = Telemetry(enabled=False)
        system = build_system(telemetry=tel)
        system.search(SearchRequest(wide_query(), client_node=0)).outcome
        system.refresh()
        assert len(tel) == 0
        assert tel.bus.emitted == 0

    def test_query_span_emitted_with_sim_times(self):
        tel = Telemetry()
        system = build_system(telemetry=tel)
        o = system.search(SearchRequest(wide_query(), client_node=0)).outcome
        spans = [e for e in tel.events() if e.name == "query.execute"]
        assert len(spans) == 1
        span = spans[0]
        assert span.kind == "span"
        assert span.dur >= o.latency
        assert span.tags["servers"] == o.servers_contacted
        assert span.tags["matches"] == o.total_matches

    def test_update_round_spans_and_attribution(self):
        tel = Telemetry()
        system = build_system(telemetry=tel)
        system.refresh()
        names = {e.name for e in tel.events()}
        assert "update.aggregate" in names
        assert "update.replicate" in names
        per_server = system.metrics.per_server(UPDATE, "aggregate")
        # Every non-leaf server received at least one child report.
        parents = {s.server_id for s in system.hierarchy if s.children}
        assert parents == set(per_server)

    def test_query_forward_load_attribution(self):
        system = build_system()
        o = system.search(SearchRequest(wide_query(), client_node=0)).outcome
        loads = system.metrics.per_server(QUERY, "forward")
        assert set(loads) == set(o.arrivals)
        assert sum(m for m, _ in loads.values()) == o.servers_contacted

    def test_maintenance_events_on_failure(self):
        tel = Telemetry()
        system = build_system(telemetry=tel)
        proto = system.enable_maintenance()
        victim = next(
            s for s in system.hierarchy if not s.is_root and not s.children
        )
        proto.fail(victim)
        system.sim.run(until=120.0)
        names = [e.name for e in tel.events()]
        assert "maintenance.fail" in names
        assert "maintenance.failure_detected" in names
        hb = system.metrics.per_server(MAINTENANCE, "heartbeat")
        assert hb and all(m > 0 for m, _ in hb.values())
