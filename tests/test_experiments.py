"""Tests for repro.experiments (drivers, runner, reporting)."""

import pytest

from repro.experiments import (
    DEGREE_SWEEP,
    DIMENSION_SWEEP,
    NODE_SWEEP,
    ExperimentSettings,
    analytical_rows,
    analytical_update_rows,
    average_trials,
    fig3_latency_vs_nodes,
    fig6_latency_vs_dimensions,
    fig8_update_overhead_vs_records,
    fig9_latency_vs_overlap,
    fig10_latency_vs_degree,
    format_table,
    measured_rows,
    run_trial,
)


SMOKE = ExperimentSettings.smoke()


class TestSettings:
    def test_paper_defaults(self):
        s = ExperimentSettings.paper()
        assert s.num_nodes == 320
        assert s.records_per_node == 500
        assert s.num_queries == 500
        assert s.runs == 10
        assert s.max_children == 8
        assert s.histogram_buckets == 1000

    def test_sweeps_match_paper(self):
        assert NODE_SWEEP == tuple(range(64, 641, 64))
        assert DIMENSION_SWEEP == tuple(range(2, 9))
        assert DEGREE_SWEEP == tuple(range(4, 13))

    def test_with_override(self):
        s = ExperimentSettings.paper().with_(num_nodes=64)
        assert s.num_nodes == 64 and s.records_per_node == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSettings(num_nodes=1)
        with pytest.raises(ValueError):
            ExperimentSettings(runs=0)


class TestRunner:
    def test_trial_pairs_systems(self):
        t = run_trial(SMOKE, seed=1, include_central=True)
        assert t.roads.mean_latency_s > 0
        assert t.sword.mean_latency_s > 0
        assert t.central.mean_latency_s > 0

    def test_roads_beats_sword_on_updates(self):
        t = run_trial(SMOKE, seed=1)
        assert t.roads.update_bytes_window < t.sword.update_bytes_window

    def test_sword_beats_roads_on_query_bytes(self):
        t = run_trial(SMOKE, seed=1)
        assert t.sword.mean_query_bytes < t.roads.mean_query_bytes

    def test_average_trials(self):
        avg = average_trials(SMOKE.with_(runs=2), measure_updates=False)
        assert "roads" in avg and "sword" in avg
        assert avg["roads"].mean_latency_s > 0


class TestFigureDrivers:
    def test_fig3_shape(self):
        # 96 and 160 nodes sit inside the same ROADS hierarchy depth
        # (4 levels at degree 8), isolating the growth-rate comparison
        # from level jumps: ROADS ~flat, SWORD linear in the segment.
        rows = fig3_latency_vs_nodes(
            SMOKE.with_(num_queries=15), node_sweep=(96, 160)
        )
        assert len(rows) == 2
        for r in rows:
            assert r["roads_latency_ms"] < r["sword_latency_ms"]
        sword_delta = rows[1]["sword_latency_ms"] - rows[0]["sword_latency_ms"]
        roads_delta = rows[1]["roads_latency_ms"] - rows[0]["roads_latency_ms"]
        assert sword_delta > roads_delta

    def test_fig6_roads_latency_falls_with_dims(self):
        rows = fig6_latency_vs_dimensions(
            SMOKE.with_(num_queries=20), dimension_sweep=(2, 8)
        )
        assert rows[1]["roads_latency_ms"] < rows[0]["roads_latency_ms"]

    def test_fig8_roads_constant_sword_linear(self):
        rows = fig8_update_overhead_vs_records(
            SMOKE.with_(num_queries=1), records_sweep=(30, 90)
        )
        roads_growth = (
            rows[1]["roads_update_bytes"] / rows[0]["roads_update_bytes"]
        )
        sword_growth = (
            rows[1]["sword_update_bytes"] / rows[0]["sword_update_bytes"]
        )
        assert roads_growth < 1.3  # ~constant
        assert sword_growth > 2.0  # ~linear in records (3x records)

    def test_fig9_runs(self):
        rows = fig9_latency_vs_overlap(
            SMOKE.with_(num_queries=10), overlap_sweep=(1, 8)
        )
        assert len(rows) == 2
        assert all(r["roads_latency_ms"] > 0 for r in rows)

    def test_fig10_latency_falls_with_degree(self):
        rows = fig10_latency_vs_degree(
            SMOKE.with_(num_queries=15), degree_sweep=(3, 12)
        )
        assert rows[-1]["roads_latency_ms"] < rows[0]["roads_latency_ms"]
        assert rows[-1]["levels"] <= rows[0]["levels"]


class TestTable1:
    def test_analytical_rows(self):
        rows = analytical_rows()
        designs = [r["design"] for r in rows]
        assert designs == ["ROADS", "SWORD", "Central"]
        assert rows[0]["formula_units"] < rows[1]["formula_units"]

    def test_analytical_update_rows(self):
        rows = analytical_update_rows()
        assert len(rows) == 3

    def test_measured_rows_ordering(self):
        # ROADS summary storage is constant in the record count; the
        # Table I ordering therefore emerges once records dominate — use
        # a record-heavy workload (the paper's table assumes 10^7 records).
        rows = measured_rows(SMOKE.with_(records_per_node=1500))
        by_design = {r["design"]: r for r in rows}
        assert (
            by_design["ROADS"]["mean_bytes_per_server"]
            < by_design["SWORD"]["mean_bytes_per_server"]
        )
        assert (
            by_design["SWORD"]["mean_bytes_per_server"]
            < by_design["Central"]["mean_bytes_per_server"]
        )

    def test_measured_roads_storage_constant_in_records(self):
        light = measured_rows(SMOKE.with_(records_per_node=100))
        heavy = measured_rows(SMOKE.with_(records_per_node=800))
        r_light = next(r for r in light if r["design"] == "ROADS")
        r_heavy = next(r for r in heavy if r["design"] == "ROADS")
        assert r_heavy["mean_bytes_per_server"] == pytest.approx(
            r_light["mean_bytes_per_server"], rel=0.05
        )


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 1e9}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]
