"""Unit tests for repro.summaries.valueset."""

import pytest

from repro.query import EqualsPredicate, RangePredicate
from repro.summaries import SummaryMergeError, ValueSetSummary


class TestBasics:
    def test_empty(self):
        s = ValueSetSummary("enc")
        assert s.is_empty
        assert len(s) == 0

    def test_from_values_dedupes(self):
        s = ValueSetSummary.from_values("enc", ["a", "b", "a"])
        assert len(s) == 2
        assert "a" in s and "b" in s

    def test_may_match(self):
        s = ValueSetSummary.from_values("enc", ["MPEG2"])
        assert s.may_match(EqualsPredicate("enc", "MPEG2"))
        assert not s.may_match(EqualsPredicate("enc", "H264"))

    def test_exact_no_false_positives(self):
        s = ValueSetSummary.from_values("enc", ["a", "b"])
        assert not s.may_match(EqualsPredicate("enc", "c"))

    def test_range_predicate_rejected(self):
        s = ValueSetSummary("enc")
        with pytest.raises(TypeError, match="range"):
            s.may_match(RangePredicate("x", 0, 1))


class TestMerge:
    def test_union(self):
        a = ValueSetSummary.from_values("enc", ["a"])
        b = ValueSetSummary.from_values("enc", ["b"])
        assert a.merge(b).values == frozenset({"a", "b"})

    def test_merge_commutative_idempotent(self):
        a = ValueSetSummary.from_values("enc", ["a", "b"])
        b = ValueSetSummary.from_values("enc", ["b", "c"])
        assert a.merge(b) == b.merge(a)
        assert a.merge(a) == a

    def test_wrong_attribute(self):
        with pytest.raises(SummaryMergeError):
            ValueSetSummary("x").merge(ValueSetSummary("y"))

    def test_wrong_type(self):
        from repro.summaries import HistogramSummary

        with pytest.raises(SummaryMergeError):
            ValueSetSummary("x").merge(HistogramSummary("x", 10))


class TestSizing:
    def test_size_grows_with_values(self):
        a = ValueSetSummary.from_values("enc", ["a"])
        ab = ValueSetSummary.from_values("enc", ["a", "b"])
        assert ab.encoded_size() > a.encoded_size()

    def test_copy_independent(self):
        a = ValueSetSummary.from_values("enc", ["a"])
        c = a.copy()
        assert c == a and c is not a
