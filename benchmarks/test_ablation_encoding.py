"""Ablation — histogram wire encoding (dense vs sparse vs bitmap).

The paper models constant-size dense summaries; sparse and bitmap
encodings are the natural engineering alternatives. This bench quantifies
the update-overhead impact of the choice at the evaluation's scale and
verifies the semantics are identical.
"""

import numpy as np
from conftest import run_once

from repro.experiments import ExperimentSettings, build_workload, print_table
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import generate_queries


def _build(settings, stores, encoding):
    cfg = RoadsConfig(
        num_nodes=settings.num_nodes,
        records_per_node=settings.records_per_node,
        max_children=settings.max_children,
        summary=SummaryConfig(
            histogram_buckets=settings.histogram_buckets,
            histogram_encoding=encoding,
        ),
        seed=settings.seed,
    )
    return RoadsSystem.build(cfg, stores)


def test_encoding_ablation(benchmark, settings):
    s = settings.with_(num_nodes=min(settings.num_nodes, 128))
    wcfg, stores = build_workload(s, s.seed)
    queries = generate_queries(wcfg, num_queries=25)

    def run():
        rows = []
        results = {}
        for encoding in ("dense", "sparse", "bitmap"):
            system = _build(s, stores, encoding)
            update = system.update_bytes_per_epoch()
            matches = [
                system.search(SearchRequest(q, client_node=0)).outcome.total_matches
                for q in queries
            ]
            rows.append(
                {"encoding": encoding, "update_bytes_per_epoch": update}
            )
            results[encoding] = matches
        return rows, results

    rows, results = run_once(benchmark, run)
    print()
    print_table(rows, title="Ablation: histogram wire encoding")

    by = {r["encoding"]: r["update_bytes_per_epoch"] for r in rows}
    # Bitmap is the most compact; dense the least (at full bucket counts).
    assert by["bitmap"] < by["sparse"] <= by["dense"] * 1.01
    assert by["dense"] / by["bitmap"] > 5
    # Encoding is wire-accounting only: query results are identical.
    assert results["dense"] == results["sparse"] == results["bitmap"]
