"""Ablation — histogram resolution vs false-positive forwarding.

Fewer buckets make summaries cheaper to ship but blur them: more servers
look like they might match, so queries fan out wider (false-positive
owner visits). This bench sweeps the bucket count and reports the
overhead / precision trade-off the design section calls out.
"""

import numpy as np
from conftest import run_once

from repro.experiments import build_workload, print_table
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import generate_queries

BUCKET_SWEEP = (10, 100, 1000)


def test_bucket_resolution_ablation(benchmark, settings):
    s = settings.with_(num_nodes=min(settings.num_nodes, 128))
    wcfg, stores = build_workload(s, s.seed)
    queries = generate_queries(wcfg, num_queries=30)

    def run():
        rows = []
        for buckets in BUCKET_SWEEP:
            cfg = RoadsConfig(
                num_nodes=s.num_nodes,
                records_per_node=s.records_per_node,
                max_children=s.max_children,
                summary=SummaryConfig(histogram_buckets=buckets),
                seed=s.seed,
            )
            system = RoadsSystem.build(cfg, stores)
            contacted, fp, matches = [], [], []
            for q in queries:
                o = system.search(SearchRequest(q, client_node=0)).outcome
                contacted.append(o.servers_contacted)
                fp.append(sum(1 for h in o.owner_hits if h.false_positive))
                matches.append(o.total_matches)
            rows.append(
                {
                    "buckets": buckets,
                    "update_bytes_per_epoch": system.update_bytes_per_epoch(),
                    "mean_servers_contacted": float(np.mean(contacted)),
                    "mean_false_positive_owners": float(np.mean(fp)),
                    "matches": tuple(matches),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print_table(
        rows,
        columns=[
            "buckets",
            "update_bytes_per_epoch",
            "mean_servers_contacted",
            "mean_false_positive_owners",
        ],
        title="Ablation: histogram bucket count",
    )

    # Results identical at any resolution (no false negatives, ever).
    assert rows[0]["matches"] == rows[1]["matches"] == rows[2]["matches"]
    # Coarser histograms -> cheaper updates but wider fan-out.
    assert rows[0]["update_bytes_per_epoch"] < rows[2]["update_bytes_per_epoch"]
    assert (
        rows[0]["mean_servers_contacted"]
        >= rows[2]["mean_servers_contacted"]
    )
    assert (
        rows[0]["mean_false_positive_owners"]
        >= rows[2]["mean_false_positive_owners"]
    )
