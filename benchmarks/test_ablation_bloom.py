"""Ablation — categorical summaries: explicit value sets vs Bloom filters.

Value sets are exact but grow with the vocabulary; Bloom filters are
constant-size but admit false positives (extra forwarding, never missed
results). This bench uses a categorical-heavy stream-processing workload
to quantify both effects.
"""

import numpy as np
from conftest import run_once

from repro.experiments import print_table
from repro.query import EqualsPredicate, Query, RangePredicate
from repro.records import RecordStore, stream_processing_schema
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig


def make_stores(n_nodes, records, seed):
    schema = stream_processing_schema()
    rng = np.random.default_rng(seed)
    types = schema["type"].categories
    encodings = schema["encoding"].categories
    stores = []
    for i in range(n_nodes):
        numeric = np.column_stack(
            [
                rng.uniform(0, 10_000, records),  # rate_kbps
                rng.uniform(0, 4096, records),  # resolution_x
                rng.uniform(0, 2160, records),  # resolution_y
                rng.random(records),  # uptime
                rng.uniform(0, 100, records),  # cost
            ]
        )
        # Each site carries a site-specific slice of sensor types.
        local_types = rng.choice(types, size=2, replace=False)
        cat_type = rng.choice(local_types, records).tolist()
        cat_enc = rng.choice(encodings, records).tolist()
        stores.append(
            RecordStore.from_arrays(schema, numeric, [cat_type, cat_enc])
        )
    return schema, stores


def test_bloom_ablation(benchmark, settings):
    n_nodes = 64
    schema, stores = make_stores(n_nodes, 150, settings.seed)
    rng = np.random.default_rng(settings.seed)
    queries = [
        Query.of(
            EqualsPredicate("type", str(rng.choice(schema["type"].categories))),
            EqualsPredicate(
                "encoding", str(rng.choice(schema["encoding"].categories))
            ),
            RangePredicate("rate_kbps", 0.0, float(rng.uniform(500, 10_000))),
        )
        for _ in range(30)
    ]

    def run():
        rows = []
        matches = {}
        for kind, bloom_bits in (("set", 1024), ("bloom", 256), ("bloom", 64)):
            label = kind if kind == "set" else f"bloom-{bloom_bits}"
            cfg = RoadsConfig(
                num_nodes=n_nodes,
                records_per_node=150,
                summary=SummaryConfig(
                    histogram_buckets=200,
                    categorical_summary=kind,
                    bloom_bits=bloom_bits,
                    bloom_hashes=3,
                ),
                seed=settings.seed,
            )
            system = RoadsSystem.build(cfg, stores)
            contacted, got = [], []
            for q in queries:
                o = system.search(SearchRequest(q, client_node=0)).outcome
                contacted.append(o.servers_contacted)
                got.append(o.total_matches)
            rows.append(
                {
                    "summary": label,
                    "update_bytes_per_epoch": system.update_bytes_per_epoch(),
                    "mean_servers_contacted": float(np.mean(contacted)),
                }
            )
            matches[label] = got
        return rows, matches

    rows, matches = run_once(benchmark, run)
    print()
    print_table(rows, title="Ablation: categorical summary structure")

    # No false negatives: all variants return identical results.
    baseline = matches["set"]
    for label, got in matches.items():
        assert got == baseline, f"{label} changed query results"
    # Tighter bloom filters cannot *reduce* fan-out below the exact sets'.
    by = {r["summary"]: r["mean_servers_contacted"] for r in rows}
    assert by["bloom-64"] >= by["set"] - 1e-9
    assert by["bloom-256"] >= by["set"] - 1e-9
