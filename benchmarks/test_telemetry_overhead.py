"""Overhead guard — telemetry-disabled execution vs the baseline path.

The pre-change query path had no telemetry calls at all. Post-change,
a system built with ``telemetry=None`` takes the same code path plus
only the ``if telemetry is not None`` guards (instrumentation compiled
to nothing), and a system with a disabled recorder additionally pays
the no-op calls. This bench pins both properties:

* determinism — the instrumented build must not perturb the simulation:
  identical outcomes (latency, bytes, servers contacted) and identical
  simulator event counts with telemetry absent, disabled, and enabled;
* overhead — the telemetry-absent path stays within noise (<=5%) of
  itself across interleaved halves, and the disabled-recorder path
  stays within 5% of the telemetry-absent baseline (medians over
  interleaved rounds, so clock drift hits both arms equally).
"""

import time

import numpy as np
from conftest import run_once

from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.telemetry import Telemetry
from repro.workload import WorkloadConfig, generate_node_stores
from repro.workload.queries import generate_queries

_NODES = 48
_RECORDS = 60
_QUERIES = 40
_ROUNDS = 7
_SEED = 11


def _build(telemetry):
    wcfg = WorkloadConfig(
        num_nodes=_NODES, records_per_node=_RECORDS, seed=_SEED
    )
    stores = generate_node_stores(wcfg)
    cfg = RoadsConfig(
        num_nodes=_NODES,
        records_per_node=_RECORDS,
        max_children=4,
        summary=SummaryConfig(histogram_buckets=100),
        seed=_SEED,
    )
    system = RoadsSystem.build(cfg, stores, telemetry=telemetry)
    queries = generate_queries(wcfg, num_queries=_QUERIES)
    clients = np.random.default_rng(_SEED).integers(
        0, _NODES, size=len(queries)
    )
    return system, queries, clients


def _run_batch(system, queries, clients):
    lat = bytes_ = servers = 0.0
    for q, c in zip(queries, clients):
        o = system.search(SearchRequest(q, client_node=int(c))).outcome
        lat += o.latency
        bytes_ += o.query_bytes
        servers += o.servers_contacted
    return lat, bytes_, servers


def _timed(make_telemetry):
    system, queries, clients = _build(make_telemetry())
    t0 = time.perf_counter()
    digest = _run_batch(system, queries, clients)
    return time.perf_counter() - t0, digest, system.sim.processed


def test_telemetry_overhead_guard(benchmark):
    def run():
        arms = {
            "absent": lambda: None,
            "disabled": lambda: Telemetry(enabled=False),
            "enabled": lambda: Telemetry(capacity=500_000),
        }
        samples = {name: [] for name in arms}
        digests = {}
        events = {}
        # Interleave rounds so machine noise hits every arm equally.
        for _ in range(_ROUNDS):
            for name, make in arms.items():
                dt, digest, processed = _timed(make)
                samples[name].append(dt)
                digests[name] = digest
                events[name] = processed
        return samples, digests, events

    samples, digests, events = run_once(benchmark, run)

    # Determinism: instrumentation must not perturb the simulation.
    assert digests["absent"] == digests["disabled"] == digests["enabled"]
    assert events["absent"] == events["disabled"] == events["enabled"]

    med = {k: float(np.median(v)) for k, v in samples.items()}
    noise = abs(
        float(np.median(samples["absent"][::2]))
        - float(np.median(samples["absent"][1::2]))
    ) / med["absent"]
    print(
        f"\nmedian per-batch seconds: absent={med['absent']:.4f} "
        f"disabled={med['disabled']:.4f} enabled={med['enabled']:.4f} "
        f"(self-noise {noise:.1%})"
    )
    # The overhead guard: disabled telemetry within 5% of the baseline
    # path (plus whatever this machine's measured self-noise is).
    budget = 1.05 + max(0.0, noise)
    assert med["disabled"] <= med["absent"] * budget, (
        f"disabled telemetry {med['disabled']:.4f}s exceeds "
        f"{budget:.2f}x baseline {med['absent']:.4f}s"
    )
