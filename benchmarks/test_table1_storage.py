"""Table I — storage overhead comparison (analytical + measured).

Regenerates the Table I row (formula units next to the paper's printed
exemplary values) plus a measured per-server storage comparison from real
system builds, and checks the equations (1)-(4) relationships.
"""

from conftest import run_once

from repro.analysis import (
    ModelParams,
    central_update_overhead,
    roads_update_overhead,
    sword_update_overhead,
)
from repro.experiments import (
    analytical_rows,
    analytical_update_rows,
    measured_rows,
    print_table,
)


def test_table1_analytical(benchmark):
    rows = run_once(benchmark, analytical_rows)
    print()
    print_table(rows, title="Table I (analytical, paper parameters)")
    by = {r["design"]: r["formula_units"] for r in rows}
    assert by["ROADS"] < by["SWORD"] < by["Central"] * 30
    # ROADS orders of magnitude below the record-exporting designs.
    assert by["SWORD"] / by["ROADS"] > 100


def test_equations_1_to_3(benchmark):
    rows = run_once(benchmark, analytical_update_rows)
    print()
    print_table(rows, title="Update overhead (units/s), equations (1)-(3)")
    p = ModelParams()
    assert roads_update_overhead(p) < central_update_overhead(p)
    assert central_update_overhead(p) < sword_update_overhead(p)


def test_table1_measured(benchmark, settings):
    # Table I's regime is record-heavy (N·K = 10^7 records): ROADS'
    # constant-size summaries only dominate once records outweigh the
    # per-server overlay state, so measure at >=1500 records/node.
    s = settings.with_(
        num_nodes=min(settings.num_nodes, 128),
        records_per_node=max(settings.records_per_node, 1500),
    )
    rows = run_once(benchmark, lambda: measured_rows(s))
    print()
    print_table(rows, title=f"Table I (measured, {s.num_nodes} nodes)")
    by = {r["design"]: r["mean_bytes_per_server"] for r in rows}
    assert by["ROADS"] < by["SWORD"] < by["Central"]
