"""Figure 9 — ROADS latency vs data overlap factor.

Paper shape: confining each server's data to a range of Of/n on the first
eight attributes, latency rises only slightly (~8% across Of = 1..12) as
growing overlap makes more servers hold matching records. Query overhead
rises similarly (~10%).
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig9_latency_vs_overlap, print_table


def test_fig9(benchmark, settings, overlap_sweep):
    s = settings.with_(num_nodes=min(settings.num_nodes, 192))
    rows = run_once(benchmark, lambda: fig9_latency_vs_overlap(s, overlap_sweep))
    print()
    print_table(rows, title="Figure 9: ROADS latency (ms) vs overlap factor")

    lat = np.array([r["roads_latency_ms"] for r in rows])
    qbytes = np.array([r["roads_query_bytes"] for r in rows])

    # Trend: latency and overhead do not decrease from min to max overlap.
    assert lat[-1] >= lat[0] * 0.95
    assert qbytes[-1] >= qbytes[0] * 0.95
    # Magnitude: a mild effect, not a blow-up (paper: ~8-10%; the tiny
    # per-server ranges make the absolute effect data-dependent, so we
    # only bound it loosely).
    assert lat.max() / max(lat.min(), 1e-9) < 3.0
