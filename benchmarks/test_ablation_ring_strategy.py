"""Ablation — SWORD ring-selection strategy (first vs narrowest range).

The paper's SWORD model resolves a query in a single ring. Which ring is
chosen affects the segment length: the *narrowest* queried range visits
the fewest servers. The paper's flat Figure 6 implies a fixed choice; this
bench quantifies how much a smarter choice would have helped SWORD — and
that ROADS' advantage does not depend on a strawman.
"""

import numpy as np
from conftest import run_once

from repro.experiments import build_workload, print_table, trial_queries
from repro.sword import SwordConfig, SwordSystem
from repro.query import Query, RangePredicate


def test_ring_strategy_ablation(benchmark, settings):
    s = settings.with_(num_nodes=min(settings.num_nodes, 192))
    wcfg, stores = build_workload(s, s.seed)
    # Mixed-width queries so the strategies actually differ.
    rng = np.random.default_rng(s.seed)
    queries = []
    for _ in range(40):
        wide_lo = rng.uniform(0, 0.3)
        narrow_lo = rng.uniform(0, 0.9)
        queries.append(
            Query.of(
                RangePredicate("u0", wide_lo, wide_lo + 0.7),
                RangePredicate("u1", narrow_lo, min(1.0, narrow_lo + 0.1)),
            )
        )
    clients = rng.integers(0, s.num_nodes, size=len(queries))

    def run():
        rows = []
        matches = {}
        for strategy in ("first", "narrowest"):
            system = SwordSystem(
                SwordConfig(
                    num_nodes=s.num_nodes,
                    records_per_node=s.records_per_node,
                    ring_strategy=strategy,
                    seed=s.seed,
                ),
                stores,
            )
            lat, qbytes, servers, got = [], [], [], []
            for q, c in zip(queries, clients):
                o = system.execute_query(q, int(c))
                lat.append(o.latency)
                qbytes.append(o.query_bytes)
                servers.append(o.servers_contacted)
                got.append(o.total_matches)
            rows.append(
                {
                    "strategy": strategy,
                    "mean_latency_ms": float(np.mean(lat)) * 1000,
                    "mean_query_bytes": float(np.mean(qbytes)),
                    "mean_servers": float(np.mean(servers)),
                }
            )
            matches[strategy] = got
        return rows, matches

    rows, matches = run_once(benchmark, run)
    print()
    print_table(rows, title="Ablation: SWORD ring-selection strategy")

    # Correctness is strategy-independent.
    assert matches["first"] == matches["narrowest"]
    by = {r["strategy"]: r for r in rows}
    # The narrow ring visits fewer servers and costs less.
    assert by["narrowest"]["mean_servers"] < by["first"]["mean_servers"]
    assert by["narrowest"]["mean_query_bytes"] < by["first"]["mean_query_bytes"]
    assert by["narrowest"]["mean_latency_ms"] < by["first"]["mean_latency_ms"]
