"""Ablation — prototype backend: full scan vs sorted-column indexes.

The paper's testbed servers answer queries from DB2 (an indexed store);
our default substitution scans in-memory columns. This bench quantifies
the measured search-time gap between the two backend modes on a
prototype-scale store, and confirms the Figure 11 *shape* does not
depend on the choice (retrieval cost dominates either way).
"""

import numpy as np
from conftest import run_once

from repro.experiments import print_table
from repro.prototype import BackendCostModel, RecordBackend
from repro.query import Query, RangePredicate
from repro.records import RecordStore, Schema, numeric


def test_backend_ablation(benchmark):
    schema = Schema([numeric(f"a{i}") for i in range(16)])
    rng = np.random.default_rng(3)
    store = RecordStore.from_arrays(schema, rng.random((200_000, 16)), [])
    selectivities = (0.0001, 0.001, 0.01, 0.1)

    def run():
        rows = []
        scan = RecordBackend(store, indexed=False)
        idx = RecordBackend(store, indexed=True)
        for sel in selectivities:
            width = sel  # one-dimensional: selectivity == range width
            q = Query.of(RangePredicate("a0", 0.5, min(1.0, 0.5 + width)))
            # time both (best of three to dodge jitter)
            t_scan = min(scan.search(q).search_seconds for _ in range(3))
            t_idx = min(idx.search(q).search_seconds for _ in range(3))
            c_scan = scan.search(q).match_count
            c_idx = idx.search(q).match_count
            assert c_scan == c_idx
            # response time is dominated by per-record retrieval at
            # either backend once matches are plentiful
            cost = BackendCostModel()
            rows.append(
                {
                    "selectivity": sel,
                    "scan_ms": t_scan * 1000,
                    "indexed_ms": t_idx * 1000,
                    "retrieval_ms": cost.retrieval_seconds(c_scan) * 1000,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print_table(rows, title="Ablation: prototype backend (200k records)")

    # The index wins on selective queries.
    assert rows[0]["indexed_ms"] < rows[0]["scan_ms"]
    # At high selectivity, modelled retrieval dwarfs both search modes —
    # the Figure 11 crossover does not hinge on the backend choice.
    assert rows[-1]["retrieval_ms"] > 10 * rows[-1]["scan_ms"]
