"""Figure 6 — latency vs query dimensionality.

Paper shape: ROADS latency falls (~40% from 2 to 8 dimensions) because
every queried dimension confines the search; SWORD stays flat because it
only ever uses one dimension for routing.
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig6_latency_vs_dimensions, print_table


def test_fig6(benchmark, settings, dimension_sweep):
    rows = run_once(
        benchmark, lambda: fig6_latency_vs_dimensions(settings, dimension_sweep)
    )
    print()
    print_table(rows, title="Figure 6: latency (ms) vs query dimensions")

    roads = np.array([r["roads_latency_ms"] for r in rows])
    sword = np.array([r["sword_latency_ms"] for r in rows])

    # ROADS: meaningful decrease from the lowest to highest dimension.
    drop = 1 - roads[-1] / roads[0]
    assert drop > 0.25, f"ROADS latency should drop with dims, got {drop:.0%}"
    # SWORD: flat within 20%.
    assert sword.max() / sword.min() < 1.25
