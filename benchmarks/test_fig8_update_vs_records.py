"""Figure 8 — update overhead vs records per node.

Paper shape: ROADS constant (fixed-size summaries regardless of record
volume); SWORD linear (every record re-registered r times).
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    fig8_update_overhead_vs_records,
    print_table,
    validate_fig8,
)


def test_fig8(benchmark, settings, records_sweep):
    s = settings.with_(num_nodes=min(settings.num_nodes, 192))
    rows = run_once(
        benchmark, lambda: fig8_update_overhead_vs_records(s, records_sweep)
    )
    print()
    print_table(
        rows, title="Figure 8: update overhead (bytes/window) vs records/node"
    )

    failures = validate_fig8(rows)
    assert not failures, failures
    roads = np.array([r["roads_update_bytes"] for r in rows], dtype=float)
    sword = np.array([r["sword_update_bytes"] for r in rows], dtype=float)
    # ROADS below SWORD at every point (it wins more as records grow).
    assert (roads < sword).all()
    assert sword[-1] / roads[-1] > sword[0] / roads[0]
