"""Figure 3 — query latency vs number of nodes.

Paper shape: ROADS grows logarithmically (small jumps at hierarchy-level
boundaries) and sits ~40-60% below SWORD, which grows linearly with the
segment it must walk.
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    fig3_latency_vs_nodes,
    print_table,
    validate_fig3,
)


def test_fig3(benchmark, settings, node_sweep):
    rows = run_once(
        benchmark, lambda: fig3_latency_vs_nodes(settings, node_sweep)
    )
    print()
    print_table(rows, title="Figure 3: latency (ms) vs number of nodes")

    failures = validate_fig3(rows)
    assert not failures, failures
    # Rough factor beyond the validator: 30%+ lower on average
    # (paper: 40-60%).
    roads = np.array([r["roads_latency_ms"] for r in rows])
    sword = np.array([r["sword_latency_ms"] for r in rows])
    assert 1 - (roads / sword).mean() > 0.3
