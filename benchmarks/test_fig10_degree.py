"""Figure 10 — ROADS latency vs node degree.

Paper shape: raising the maximum children per server from 4 to 12
flattens the hierarchy, cutting latency from ~1000 ms to ~650 ms (and
query overhead from ~3500 to ~2000 bytes, figure not shown in the paper).
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig10_latency_vs_degree, print_table


def test_fig10(benchmark, settings, degree_sweep):
    rows = run_once(
        benchmark, lambda: fig10_latency_vs_degree(settings, degree_sweep)
    )
    print()
    print_table(rows, title="Figure 10: ROADS latency (ms) vs node degree")

    lat = np.array([r["roads_latency_ms"] for r in rows])
    levels = np.array([r["levels"] for r in rows])

    # Who wins: the flattest hierarchy.
    assert lat[-1] < lat[0]
    # Rough factor: paper shows ~35% reduction from degree 4 to 12.
    assert 1 - lat[-1] / lat[0] > 0.15
    # Mechanism: depth shrinks (or at least never grows) with degree.
    assert (np.diff(levels) <= 0).all()
