"""Figure 5 — query message overhead vs number of nodes.

Paper shape: ROADS 2-5x above SWORD — voluntary sharing means the query
must visit every owner whose summaries match, while SWORD hashes the
matching records onto a small segment of servers.
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    fig5_query_overhead_vs_nodes,
    print_table,
    validate_fig5,
)


def test_fig5(benchmark, settings, node_sweep):
    rows = run_once(
        benchmark, lambda: fig5_query_overhead_vs_nodes(settings, node_sweep)
    )
    print()
    print_table(rows, title="Figure 5: query overhead (bytes) vs nodes")

    failures = validate_fig5(rows)
    assert not failures, failures
    # Paper band: 2-5x (we accept up to 8x at the largest sweeps).
    ratios = np.array([r["ratio"] for r in rows])
    assert (ratios > 1.2).all()
