"""Figure 7 — query overhead vs query dimensionality.

Paper shape: SWORD grows linearly (bigger query messages over the same
path); ROADS starts far higher, dips as extra dimensions confine the
search scope, then flattens/rises once the scope reduction is exhausted
and message size growth takes over.
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig7_query_overhead_vs_dimensions, print_table


def test_fig7(benchmark, settings, dimension_sweep):
    rows = run_once(
        benchmark,
        lambda: fig7_query_overhead_vs_dimensions(settings, dimension_sweep),
    )
    print()
    print_table(rows, title="Figure 7: query overhead (bytes) vs dimensions")

    roads = np.array([r["roads_query_bytes"] for r in rows])
    sword = np.array([r["sword_query_bytes"] for r in rows])

    # SWORD: monotone growth, roughly linear in dimensionality.
    assert (np.diff(sword) > 0).all()
    # ROADS: the initial dip — low-dimensional queries are the most
    # expensive because almost nothing is pruned.
    assert roads[0] == roads.max()
    assert roads.min() < roads[0] * 0.6
