"""Summary-maintenance and heartbeat overhead (Section IV, equation 4).

The paper bounds the per-node replication-message load at O(k²·i) for a
level-i node — about 150 summaries per t_s even in a 7-level hierarchy —
and argues the maintenance traffic is negligible. This bench measures
both on a real hierarchy: per-node replication messages per epoch
(against the analytical bound) and steady heartbeat traffic per node per
second.
"""

import numpy as np
from conftest import run_once

from repro.experiments import build_roads, build_workload, print_table
from repro.hierarchy import MaintenanceConfig
from repro.sim import MAINTENANCE


def test_maintenance_overhead(benchmark, settings):
    s = settings.with_(num_nodes=min(settings.num_nodes, 192))
    _, stores = build_workload(s, s.seed)
    system = build_roads(s, stores, s.seed)
    k = s.max_children

    def run():
        counts = system.overlay.per_node_message_counts()
        depths = {
            srv.server_id: srv.depth for srv in system.hierarchy
        }
        worst = max(counts.values())
        # Heartbeat traffic over one simulated minute.
        system.enable_maintenance(
            MaintenanceConfig(heartbeat_interval=5.0)
        )
        before = system.metrics.bytes(MAINTENANCE)
        system.sim.run(until=system.sim.now + 60.0)
        hb_bytes = system.metrics.bytes(MAINTENANCE) - before
        return counts, depths, worst, hb_bytes

    counts, depths, worst, hb_bytes = run_once(benchmark, run)
    n = len(counts)
    rows = [
        {
            "nodes": n,
            "max_replication_msgs_per_node_per_epoch": worst,
            "mean_replication_msgs": float(np.mean(list(counts.values()))),
            "heartbeat_bytes_per_node_per_s": hb_bytes / n / 60.0,
        }
    ]
    print()
    print_table(rows, title="Maintenance overhead (eq. 4 regime)")

    # Per-node replication load bounded by the analytical O(k^2 * depth):
    for sid, c in counts.items():
        assert c <= k * k * max(1, depths[sid]) + k, (sid, c, depths[sid])
    # "each node only sends a few summaries per second": with t_s = 60s
    # even the worst node ships far fewer than 10 summaries/second.
    assert worst / 60.0 < 10
    # Heartbeats are tiny next to the update traffic.
    update_epoch = system.update_bytes_per_epoch()
    assert hb_bytes < update_epoch / 10
