"""Figure 11 — prototype total response time vs query selectivity.

Paper shape: the central repository wins at low selectivity (one query/
reply round trip); as selectivity grows, record retrieval dominates and
ROADS' parallel per-owner retrieval becomes comparable around 1% and
better at 3%. ROADS' own response time stays roughly flat (~1000 ms in
the paper, consistent with its ~800 ms simulated forwarding latency).
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    SELECTIVITY_SWEEP,
    crossover_position,
    fig11_response_time_vs_selectivity,
    print_table,
    validate_fig11,
)


def test_fig11(benchmark, settings, scale):
    # The crossover needs the full record population (selectivity acts on
    # the federation-wide record count), so keep paper-scale records.
    queries_per_group = 200 if scale == "paper" else 15
    rows = run_once(
        benchmark,
        lambda: fig11_response_time_vs_selectivity(
            settings.with_(num_nodes=320, records_per_node=500, runs=1),
            SELECTIVITY_SWEEP,
            queries_per_group=queries_per_group,
        ),
    )
    print()
    print_table(
        rows,
        title="Figure 11: total response time (ms) vs query selectivity (%)",
    )

    failures = validate_fig11(rows)
    assert not failures, failures
    roads = np.array([r["roads_mean_ms"] for r in rows])
    central = np.array([r["central_mean_ms"] for r in rows])
    # Central's response grows with selectivity (serial retrieval).
    assert central[-1] > central[0] * 2
    # ROADS roughly flat (parallel retrieval); within 2x across the sweep.
    assert roads.max() / roads.min() < 2.0
    # Crossover position: between 0.3% and 3% selectivity, as the paper.
    pos = crossover_position(
        rows, "selectivity_pct", "roads_mean_ms", "central_mean_ms"
    )
    assert pos is not None and 0.3 <= pos <= 3.0
