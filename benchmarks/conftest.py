"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
the same rows/series the paper reports, then asserts the qualitative
shape (who wins, growth order, approximate factor, crossover position).

Scale is selected with the ``REPRO_BENCH_SCALE`` environment variable:

* ``quick`` (default) — reduced sweeps/runs; minutes, same shapes;
* ``paper`` — the full Section V configuration (320-640 nodes, 500
  queries, 10 runs); expect a long run.
"""

import os

import pytest

from repro.experiments import ExperimentSettings


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale not in ("quick", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be quick|paper, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def settings(scale) -> ExperimentSettings:
    if scale == "paper":
        return ExperimentSettings.paper()
    # Reduced: fewer queries and runs, paper-default structure otherwise.
    return ExperimentSettings.paper().with_(num_queries=60, runs=1)


@pytest.fixture(scope="session")
def node_sweep(scale):
    if scale == "paper":
        return tuple(range(64, 641, 64))
    return (64, 192, 320)


@pytest.fixture(scope="session")
def dimension_sweep(scale):
    if scale == "paper":
        return tuple(range(2, 9))
    return (2, 4, 6, 8)


@pytest.fixture(scope="session")
def records_sweep(scale):
    if scale == "paper":
        return (50, 100, 150, 200, 250, 300, 350, 400, 450, 500)
    return (50, 200, 500)


@pytest.fixture(scope="session")
def overlap_sweep(scale):
    if scale == "paper":
        return tuple(range(1, 13))
    return (1, 4, 8, 12)


@pytest.fixture(scope="session")
def degree_sweep(scale):
    if scale == "paper":
        return tuple(range(4, 13))
    return (4, 8, 12)


def run_once(benchmark, fn):
    """Time one full regeneration of a figure (no warmup repeats)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
