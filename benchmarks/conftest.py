"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
the same rows/series the paper reports, then asserts the qualitative
shape (who wins, growth order, approximate factor, crossover position).

Scale is selected with the ``REPRO_BENCH_SCALE`` environment variable
and resolved by :mod:`repro.bench` — the same presets behind
``python -m repro bench run``:

* ``quick`` (default) — reduced sweeps/runs; minutes, same shapes;
* ``paper`` — the full Section V configuration (320-640 nodes, 500
  queries, 10 runs); expect a long run.
"""

import pytest

from repro.bench import resolve_scale, scale_settings, scale_sweeps
from repro.experiments import ExperimentSettings


def bench_scale() -> str:
    return resolve_scale("quick", allowed=("quick", "paper"))


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def settings(scale) -> ExperimentSettings:
    return scale_settings(scale)


@pytest.fixture(scope="session")
def sweeps(scale):
    return scale_sweeps(scale)


@pytest.fixture(scope="session")
def node_sweep(sweeps):
    return sweeps["nodes"]


@pytest.fixture(scope="session")
def dimension_sweep(sweeps):
    return sweeps["dims"]


@pytest.fixture(scope="session")
def records_sweep(sweeps):
    return sweeps["records"]


@pytest.fixture(scope="session")
def overlap_sweep(sweeps):
    return sweeps["overlap"]


@pytest.fixture(scope="session")
def degree_sweep(sweeps):
    return sweeps["degree"]


def run_once(benchmark, fn):
    """Time one full regeneration of a figure (no warmup repeats)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
