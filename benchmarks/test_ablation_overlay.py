"""Ablation — replication overlay on vs off.

With the overlay, searches start at the client's own server and use the
replicated sibling/ancestor summaries as shortcuts; without it (the basic
hierarchy of Section III-A) every query starts at the root. The overlay
should cut latency and eliminate the root hotspot, at identical results.
"""

import numpy as np
from collections import Counter

from conftest import run_once

from repro.experiments import (
    build_roads,
    build_workload,
    print_table,
    trial_queries,
)
from repro.roads import SearchRequest


def test_overlay_ablation(benchmark, settings):
    s = settings.with_(num_nodes=min(settings.num_nodes, 192))
    wcfg, stores = build_workload(s, s.seed)
    queries, clients = trial_queries(s, wcfg, s.seed)
    queries, clients = queries[:40], clients[:40]
    system = build_roads(s, stores, s.seed)
    root_id = system.hierarchy.root.server_id

    def run():
        stats = {}
        for use_overlay in (True, False):
            lat, bytes_, root_hits, matches = [], [], 0, []
            for q, c in zip(queries, clients):
                o = system.search(SearchRequest(q, client_node=int(c), use_overlay=use_overlay)).outcome
                lat.append(o.latency)
                bytes_.append(o.query_bytes)
                matches.append(o.total_matches)
                root_hits += int(root_id in o.arrivals)
            stats["overlay" if use_overlay else "basic"] = {
                "mean_latency_ms": float(np.mean(lat)) * 1000,
                "mean_query_bytes": float(np.mean(bytes_)),
                "root_hit_fraction": root_hits / len(queries),
                "matches": matches,
            }
        return stats

    stats = run_once(benchmark, run)
    rows = [
        {"mode": mode, **{k: v for k, v in st.items() if k != "matches"}}
        for mode, st in stats.items()
    ]
    print()
    print_table(rows, title="Ablation: replication overlay on/off")

    # Identical results either way.
    assert stats["overlay"]["matches"] == stats["basic"]["matches"]
    # Basic hierarchy: every query hits the root; overlay: few do.
    assert stats["basic"]["root_hit_fraction"] == 1.0
    assert stats["overlay"]["root_hit_fraction"] < 0.7
    # Overlay reduces latency (searches start closer to the data).
    assert (
        stats["overlay"]["mean_latency_ms"]
        < stats["basic"]["mean_latency_ms"]
    )
