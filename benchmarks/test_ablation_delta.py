"""Ablation — delta (change-detection) summary propagation.

With records changing every t_r and summaries refreshed every t_s, most
record updates land in the same histogram bucket and leave summaries
untouched. Delta propagation sends a keep-alive instead of the full
summary in that case; this bench measures the steady-state saving and the
cost under genuine churn.
"""

import numpy as np
from conftest import run_once

from repro.experiments import build_workload, print_table
from repro.roads import RoadsConfig, RoadsSystem
from repro.summaries import SummaryConfig


def test_delta_ablation(benchmark, settings):
    s = settings.with_(num_nodes=min(settings.num_nodes, 128))
    _, stores = build_workload(s, s.seed)
    rng = np.random.default_rng(s.seed)

    def run():
        rows = []
        for delta in (False, True):
            cfg = RoadsConfig(
                num_nodes=s.num_nodes,
                records_per_node=s.records_per_node,
                max_children=s.max_children,
                summary=SummaryConfig(histogram_buckets=s.histogram_buckets),
                delta_updates=delta,
                seed=s.seed,
            )
            system = RoadsSystem.build(cfg, stores)
            steady = system.refresh().total_bytes
            # Churn epoch: 5% of one node's records jump buckets.
            store = stores[0]
            n_changed = max(1, len(store) // 20)
            for row in range(n_changed):
                store.update_numeric(
                    row, "u0", float(rng.uniform(0.0, 1.0))
                )
            churn = system.refresh().total_bytes
            rows.append(
                {
                    "delta_updates": delta,
                    "steady_epoch_bytes": steady,
                    "churn_epoch_bytes": churn,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print_table(rows, title="Ablation: delta summary propagation")

    off, on = rows
    # Steady state: delta mode is >10x cheaper.
    assert on["steady_epoch_bytes"] < off["steady_epoch_bytes"] / 10
    # Churn: delta re-ships only the changed path, still far below full.
    assert on["churn_epoch_bytes"] < off["churn_epoch_bytes"]
    # Under churn delta costs more than its own steady state.
    assert on["churn_epoch_bytes"] > on["steady_epoch_bytes"]
