"""Figure 4 — update message overhead vs number of nodes (log scale).

Paper shape: ROADS 1-2 orders of magnitude below SWORD, thanks to
condensed constant-size summaries vs per-record r-fold DHT registration.
"""

import numpy as np
from conftest import run_once

from repro.experiments import (
    fig4_update_overhead_vs_nodes,
    print_table,
    validate_fig4,
)


def test_fig4(benchmark, settings, node_sweep):
    rows = run_once(
        benchmark, lambda: fig4_update_overhead_vs_nodes(settings, node_sweep)
    )
    print()
    print_table(rows, title="Figure 4: update overhead (bytes/window) vs nodes")

    failures = validate_fig4(rows)
    assert not failures, failures
    # Both grow with n; SWORD stays far above throughout.
    sword = [r["sword_update_bytes"] for r in rows]
    roads = [r["roads_update_bytes"] for r in rows]
    assert sword[-1] > sword[0]
    assert roads[-1] > roads[0]
