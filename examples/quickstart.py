#!/usr/bin/env python
"""Quickstart: build a small ROADS federation and run a few queries.

This walks through the whole public API surface in one sitting:

1. generate a federated workload (records spread across 48 owner nodes);
2. build the ROADS system — hierarchy, bottom-up aggregation, overlay;
3. run multi-dimensional range queries from arbitrary nodes;
4. inspect latency, traffic, and which owners answered;
5. compare against the SWORD (DHT) and central-repository baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RoadsConfig, RoadsSystem, SearchRequest, SwordConfig, SwordSystem
from repro.central import CentralConfig, CentralSystem
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)

NODES = 48
RECORDS = 200
SEED = 42


def main() -> None:
    # 1. Workload: every node is a resource owner with its own records.
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=RECORDS, seed=SEED)
    stores = generate_node_stores(wcfg)
    print(f"workload: {NODES} owners x {RECORDS} records, "
          f"{wcfg.num_attributes} attributes each")

    # 2. ROADS: the hierarchy forms by balanced incremental join; owners
    #    export only summaries; the overlay replicates them for
    #    start-anywhere search.
    system = RoadsSystem.build(
        RoadsConfig(num_nodes=NODES, records_per_node=RECORDS, seed=SEED),
        stores,
    )
    print(f"hierarchy: {len(system.hierarchy)} servers, "
          f"{system.levels} levels, root = server "
          f"{system.hierarchy.root.server_id}")

    # 3. Queries: six-dimensional range queries, as in the paper's
    #    evaluation (three-dimensional here so a 48-node demo federation
    #    has visible matches), issued from random nodes.
    queries = generate_queries(wcfg, num_queries=10, dimensions=3)
    reference = merge_stores(stores)

    print("\nquery results (ROADS vs ground truth):")
    for q in queries[:5]:
        outcome = system.search(SearchRequest(q)).outcome
        truth = q.match_count(reference)
        owners = sorted({h.owner_id for h in outcome.owner_hits if h.match_count})
        print(
            f"  {outcome.total_matches:3d} matches (truth {truth:3d})  "
            f"latency {outcome.latency * 1000:6.1f} ms  "
            f"servers {outcome.servers_contacted:2d}  "
            f"bytes {outcome.query_bytes:5d}  owners {owners[:4]}"
        )
        assert outcome.total_matches == truth

    # 4. Update traffic: what one summary refresh epoch costs.
    epoch_bytes = system.update_bytes_per_epoch()
    print(f"\nROADS summary refresh: {epoch_bytes:,} bytes per epoch "
          f"(every {system.config.summary_interval:.0f} s)")

    # 5. Baselines on the identical workload.
    sword = SwordSystem(
        SwordConfig(num_nodes=NODES, records_per_node=RECORDS, seed=SEED),
        stores,
    )
    central = CentralSystem(CentralConfig(num_nodes=NODES, seed=SEED), stores)
    rng = np.random.default_rng(SEED)
    window = 600.0  # 10 summary epochs / 100 record epochs

    roads_lat, sword_lat = [], []
    for q in queries:
        client = int(rng.integers(0, NODES))
        roads_lat.append(
            system.search(SearchRequest(q, client_node=client)).latency
        )
        sword_lat.append(sword.execute_query(q, client).latency)

    print("\nhead-to-head over the same queries:")
    print(f"  mean latency : ROADS {np.mean(roads_lat)*1000:7.1f} ms | "
          f"SWORD {np.mean(sword_lat)*1000:7.1f} ms")
    print(f"  update bytes : ROADS {system.update_overhead(window):12,} | "
          f"SWORD {sword.update_overhead(window):14,} | "
          f"central {central.update_overhead(window):12,}  (per {window:.0f}s)")
    print("\nROADS ships condensed summaries instead of records: "
          f"{sword.update_overhead(window) / system.update_overhead(window):.0f}x "
          "less update traffic than the DHT design.")


if __name__ == "__main__":
    main()
