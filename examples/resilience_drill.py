#!/usr/bin/env python
"""Resilience drill: heartbeats, failures, root election, scope control.

Hierarchy maintenance is what keeps a federated system usable when
servers leave or crash (Section III-A). This drill exercises every
recovery path on a live simulated federation:

1. graceful departure — children reattach near their grandparent;
2. crash failure of an internal server — silence detection + rejoin;
3. crash failure of the ROOT — the children elect a replacement
   (smallest id) and the hierarchy reassembles under it;
4. scope control — a client widens its search one ancestor at a time
   instead of always searching the whole federation.

Run:  python examples/resilience_drill.py
"""

import numpy as np

from repro import RoadsConfig, RoadsSystem, SearchRequest
from repro.hierarchy import MaintenanceConfig
from repro.overlay import scope_candidates
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)

NODES = 40
RECORDS = 60
SEED = 11


def verify_queries(system, stores, queries, label):
    alive = [s.server_id for s in system.hierarchy if s.alive]
    reference = merge_stores([stores[i] for i in alive])
    for q in queries:
        o = system.search(SearchRequest(q, client_node=alive[0])).outcome
        assert o.total_matches == q.match_count(reference), label
    print(f"  [ok] {len(queries)} queries still exact ({label})")


def main() -> None:
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=RECORDS, seed=SEED)
    stores = generate_node_stores(wcfg)
    system = RoadsSystem.build(
        RoadsConfig(
            num_nodes=NODES, records_per_node=RECORDS, max_children=3, seed=SEED
        ),
        stores,
    )
    proto = system.enable_maintenance(
        MaintenanceConfig(heartbeat_interval=2.0, miss_threshold=3)
    )
    queries = generate_queries(wcfg, num_queries=8, dimensions=3)
    print(f"federation: {NODES} servers, {system.levels} levels, "
          f"root = {system.hierarchy.root.server_id}")

    # 1. graceful departure ---------------------------------------------------
    leaver = next(s for s in system.hierarchy if not s.is_root and s.children)
    print(f"\n1. server {leaver.server_id} leaves gracefully "
          f"({len(leaver.children)} children must reattach)")
    proto.leave(leaver)
    system.hierarchy.check_invariants()
    system.refresh()
    verify_queries(system, stores, queries, "after graceful leave")

    # 2. internal crash ---------------------------------------------------------
    victim = next(s for s in system.hierarchy if not s.is_root and s.children)
    print(f"\n2. server {victim.server_id} crashes silently")
    proto.fail(victim)
    system.sim.run(until=system.sim.now + 40.0)
    system.hierarchy.check_invariants()
    system.refresh()
    print(f"  detected {proto.failures_detected} failures, "
          f"{proto.rejoins} rejoins so far")
    verify_queries(system, stores, queries, "after internal crash")

    # 3. root crash -------------------------------------------------------------
    old_root = system.hierarchy.root
    expected = min(old_root.child_ids())
    print(f"\n3. ROOT {old_root.server_id} crashes; children "
          f"{old_root.child_ids()} must elect {expected}")
    proto.fail(old_root)
    system.sim.run(until=system.sim.now + 60.0)
    system.hierarchy.check_invariants()
    system.refresh()
    print(f"  new root: {system.hierarchy.root.server_id} "
          f"({proto.root_elections} election(s))")
    assert system.hierarchy.root.server_id == expected
    verify_queries(system, stores, queries, "after root election")

    # 4. scope control ------------------------------------------------------------
    print("\n4. scope control: widening the search ancestor by ancestor")
    leaf = max(system.hierarchy, key=lambda s: s.depth)
    q = queries[0]
    print(f"  client at leaf {leaf.server_id} (depth {leaf.depth}), query: {q}")
    # Narrowest scope: the leaf's own branch only.
    local = q.match_count(stores[leaf.server_id]) if leaf.alive else 0
    print(f"    own records                : {local} matches")
    for anc_id in scope_candidates(leaf):
        anc = system.hierarchy.get(anc_id)
        branch_ids = [s.server_id for s in anc.iter_subtree() if s.alive]
        branch_ref = merge_stores([stores[i] for i in branch_ids])
        print(f"    scope = subtree of {anc_id:>3}    : "
              f"{q.match_count(branch_ref)} matches "
              f"({len(branch_ids)} servers)")
    print("  the full-federation search (previous sections) is the widest scope")

    print("\nall recovery paths exercised; hierarchy invariants held throughout")


if __name__ == "__main__":
    main()
