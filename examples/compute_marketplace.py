#!/usr/bin/env python
"""Grid compute marketplace: discovering machines across organizations.

A classic grid-era scenario (the niche ROADS was designed for): dozens of
organizations contribute compute resources — each machine described by
architecture, OS, CPU count, clock, memory, disk, load, and network
bandwidth — and users discover machines with multi-dimensional range
queries like "at least 8 x86_64 CPUs, 32+ GB RAM, load under 30%".

This example exercises:

* the compute-resource schema with mixed attribute types;
* dynamic resources — machine load changes continuously, and soft-state
  summary refresh picks the changes up each epoch;
* discovery under churn: an organization's server crashes, the
  maintenance protocol heals the hierarchy, and queries keep working.

Run:  python examples/compute_marketplace.py
"""

import numpy as np

from repro import Query, RangePredicate, EqualsPredicate, RecordStore
from repro import RoadsConfig, RoadsSystem, SearchRequest
from repro.records import compute_resource_schema
from repro.workload import merge_stores

ORGS = 20
MACHINES_PER_ORG = 150
SEED = 2024


def build_org_inventory(rng, schema, org):
    n = MACHINES_PER_ORG
    arch = rng.choice(schema["arch"].categories, n, p=[0.7, 0.15, 0.15]).tolist()
    os_ = rng.choice(schema["os"].categories, n, p=[0.8, 0.1, 0.1]).tolist()
    numeric = np.column_stack(
        [
            rng.choice([1, 2, 4, 8, 16, 32, 64], n).astype(float),  # cpus
            rng.uniform(1.0, 4.0, n),  # clock_ghz
            rng.choice([4, 8, 16, 32, 64, 128, 256], n).astype(float),  # memory_gb
            rng.uniform(100, 10_000, n),  # disk_gb
            rng.beta(2, 5, n),  # load
            rng.choice([100, 1_000, 10_000], n).astype(float),  # net_mbps
        ]
    )
    return RecordStore.from_arrays(
        schema, numeric, [arch, os_], owner=f"owner-{org}"
    )


def main() -> None:
    rng = np.random.default_rng(SEED)
    schema = compute_resource_schema()
    inventories = [build_org_inventory(rng, schema, o) for o in range(ORGS)]

    system = RoadsSystem.build(
        RoadsConfig(
            num_nodes=ORGS,
            records_per_node=MACHINES_PER_ORG,
            max_children=4,
            seed=SEED,
        ),
        inventories,
    )
    reference = merge_stores(inventories)
    print(f"marketplace: {ORGS} orgs x {MACHINES_PER_ORG} machines, "
          f"{system.levels}-level hierarchy")

    query = Query.of(
        EqualsPredicate("arch", "x86_64"),
        EqualsPredicate("os", "linux"),
        RangePredicate("cpus", 8, 512),
        RangePredicate("memory_gb", 32, 4096),
        RangePredicate("load", 0.0, 0.3),
    )
    print(f"\nquery: {query}")
    outcome = system.search(SearchRequest(query)).outcome
    print(f"  found {outcome.total_matches} machines "
          f"(ground truth {query.match_count(reference)}) in "
          f"{outcome.latency * 1000:.1f} ms across "
          f"{outcome.servers_contacted} servers")

    # --- Dynamic resources -------------------------------------------------
    # Load changes on every machine; summaries are soft state and pick
    # the changes up at the next refresh epoch.
    print("\nsimulating a load spike at half the organizations...")
    for org in range(0, ORGS, 2):
        store = inventories[org]
        for row in range(len(store)):
            store.update_numeric(row, "load", float(rng.uniform(0.6, 1.0)))
    system.refresh()  # next summary epoch

    reference = merge_stores(inventories)  # re-snapshot the ground truth
    after = system.search(SearchRequest(query)).outcome
    print(f"  idle machines after the spike: {after.total_matches} "
          f"(ground truth {query.match_count(reference)})")
    assert after.total_matches == query.match_count(reference)
    assert after.total_matches < outcome.total_matches

    # --- Churn ---------------------------------------------------------------
    print("\ncrash-failing one organization's server...")
    proto = system.enable_maintenance()
    victim = next(
        s for s in system.hierarchy if not s.is_root and s.children
    )
    victim_id = victim.server_id
    proto.fail(victim)
    system.sim.run(until=system.sim.now + 60.0)  # detection + healing
    system.refresh()
    system.hierarchy.check_invariants()

    survivors = merge_stores(
        [inventories[i] for i in range(ORGS) if i != victim_id]
    )
    healthy_client = next(s.server_id for s in system.hierarchy if s.alive)
    healed = system.search(
        SearchRequest(query, client_node=healthy_client)
    ).outcome
    print(f"  after healing: {healed.total_matches} machines "
          f"(ground truth without org {victim_id}: "
          f"{query.match_count(survivors)}); hierarchy "
          f"rebuilt with {len(system.hierarchy)} servers, "
          f"{proto.rejoins} rejoins")
    assert healed.total_matches == query.match_count(survivors)


if __name__ == "__main__":
    main()
