#!/usr/bin/env python
"""Regenerate any of the paper's tables/figures from the command line.

Usage::

    python examples/reproduce_figures.py table1
    python examples/reproduce_figures.py fig3 fig4 --scale quick
    python examples/reproduce_figures.py all --scale paper

``--scale quick`` (default) runs reduced sweeps in minutes; ``paper``
runs the full Section V configuration (expect a long run).

``--bench-artifact DIR`` additionally runs each target through the
benchmark observatory (``repro.bench``) and writes a provenance-stamped
``BENCH_<target>.json`` to *DIR* — the same artifacts ``repro bench
run`` produces and ``repro bench compare`` consumes.
"""

import argparse
import sys
import time

from repro.bench import (
    SCENARIOS,
    artifact_filename,
    run_scenario,
    scale_settings,
    scale_sweeps,
    write_artifact,
)
from repro.experiments import (
    SELECTIVITY_SWEEP,
    analytical_rows,
    analytical_update_rows,
    fig3_latency_vs_nodes,
    fig4_update_overhead_vs_nodes,
    fig5_query_overhead_vs_nodes,
    fig6_latency_vs_dimensions,
    fig7_query_overhead_vs_dimensions,
    fig8_update_overhead_vs_records,
    fig9_latency_vs_overlap,
    fig10_latency_vs_degree,
    fig11_response_time_vs_selectivity,
    measured_rows,
    print_table,
)

def build_registry(settings, sweeps, scale):
    small = settings.with_(num_nodes=min(settings.num_nodes, 192))
    return {
        "table1": lambda: (
            print_table(analytical_rows(), title="Table I (analytical)"),
            print(),
            print_table(
                analytical_update_rows(),
                title="Equations (1)-(3), units/second",
            ),
            print(),
            print_table(
                measured_rows(
                    small.with_(num_nodes=128, records_per_node=1500)
                ),
                title="Table I (measured)",
            ),
        ),
        "fig3": lambda: print_table(
            fig3_latency_vs_nodes(settings, sweeps["nodes"]),
            title="Figure 3: latency (ms) vs number of nodes",
        ),
        "fig4": lambda: print_table(
            fig4_update_overhead_vs_nodes(settings, sweeps["nodes"]),
            title="Figure 4: update overhead (bytes) vs number of nodes",
        ),
        "fig5": lambda: print_table(
            fig5_query_overhead_vs_nodes(settings, sweeps["nodes"]),
            title="Figure 5: query overhead (bytes) vs number of nodes",
        ),
        "fig6": lambda: print_table(
            fig6_latency_vs_dimensions(settings, sweeps["dims"]),
            title="Figure 6: latency (ms) vs query dimensions",
        ),
        "fig7": lambda: print_table(
            fig7_query_overhead_vs_dimensions(settings, sweeps["dims"]),
            title="Figure 7: query overhead (bytes) vs query dimensions",
        ),
        "fig8": lambda: print_table(
            fig8_update_overhead_vs_records(small, sweeps["records"]),
            title="Figure 8: update overhead (bytes) vs records per node",
        ),
        "fig9": lambda: print_table(
            fig9_latency_vs_overlap(small, sweeps["overlap"]),
            title="Figure 9: ROADS latency (ms) vs data overlap factor",
        ),
        "fig10": lambda: print_table(
            fig10_latency_vs_degree(settings, sweeps["degree"]),
            title="Figure 10: ROADS latency (ms) vs node degree",
        ),
        "fig11": lambda: print_table(
            fig11_response_time_vs_selectivity(
                settings.with_(num_nodes=320, records_per_node=500, runs=1),
                SELECTIVITY_SWEEP,
                queries_per_group=200 if scale == "paper" else 20,
            ),
            title="Figure 11: total response time (ms) vs selectivity (%)",
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "targets",
        nargs="+",
        help="table1, fig3..fig11, or 'all'",
    )
    parser.add_argument("--scale", choices=("quick", "paper"), default="quick")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--bench-artifact",
        metavar="DIR",
        help="also write a BENCH_<target>.json benchmark artifact per "
        "target to DIR (see `python -m repro bench`)",
    )
    args = parser.parse_args(argv)

    settings = scale_settings(args.scale, args.seed)
    sweeps = scale_sweeps(args.scale)

    registry = build_registry(settings, sweeps, args.scale)
    targets = (
        list(registry) if "all" in args.targets else args.targets
    )
    unknown = [t for t in targets if t not in registry]
    if unknown:
        parser.error(f"unknown targets {unknown}; choose from {list(registry)}")

    for target in targets:
        t0 = time.time()
        print(f"=== {target} (scale={args.scale}) ===")
        registry[target]()
        print(f"--- {target} done in {time.time() - t0:.1f}s ---\n")
        if args.bench_artifact and target in SCENARIOS:
            artifact = run_scenario(target, scale=args.scale, seed=args.seed)
            path = write_artifact(
                artifact, f"{args.bench_artifact}/{artifact_filename(target)}"
            )
            status = "ok" if artifact.ok else "SHAPE FAIL"
            print(f"    bench artifact [{status}] -> {path}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
