#!/usr/bin/env python
"""Federation observatory: introspecting a running ROADS deployment.

A tour of the library's diagnostic surfaces:

* ASCII rendering of the live hierarchy and its shape statistics;
* per-query event traces (send / arrive / redirect / owner / satisfied);
* the analytical query-cost model validated against live measurements;
* three-way response-time comparison (ROADS / SWORD / central);
* an ASCII chart of a mini node-count sweep.

Run:  python examples/federation_observatory.py
"""

import numpy as np

from repro.analysis import (
    QueryCostParams,
    expected_contacts,
    leaf_match_probability_from_dims,
    measured_dimension_probabilities,
)
from repro.experiments import ExperimentSettings, fig3_latency_vs_nodes
from repro.experiments.charts import ascii_chart
from repro.hierarchy import render_tree, tree_stats
from repro.prototype import CentralResponder, RoadsResponder, SwordResponder
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import ResourceSummary, SummaryConfig
from repro.sword import SwordConfig, SwordSystem
from repro.central import CentralConfig, CentralSystem
from repro.workload import WorkloadConfig, generate_node_stores, generate_queries

NODES = 24
RECORDS = 150
SEED = 77


def main() -> None:
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=RECORDS, seed=SEED)
    stores = generate_node_stores(wcfg)
    cfg = SummaryConfig(histogram_buckets=200)
    system = RoadsSystem.build(
        RoadsConfig(num_nodes=NODES, records_per_node=RECORDS,
                    max_children=3, summary=cfg, seed=SEED),
        stores,
    )

    # 1. the hierarchy, drawn -------------------------------------------------
    print("=== hierarchy ===")
    print(render_tree(system.hierarchy,
                      label=lambda s: f"s{s.server_id}"))
    print(tree_stats(system.hierarchy))

    # 2. a traced query ----------------------------------------------------------
    print("\n=== traced query ===")
    q = generate_queries(wcfg, num_queries=3, dimensions=3)[0]
    outcome = system.search(SearchRequest(q, client_node=5, trace=True)).outcome
    print(f"query: {q}")
    print(outcome.format_trace())
    print(f"-> {outcome.total_matches} matches from "
          f"{outcome.servers_contacted} servers in "
          f"{outcome.latency * 1000:.0f} ms")

    # 3. model vs measurement ---------------------------------------------------
    print("\n=== analytical query-cost model ===")
    queries = generate_queries(wcfg, num_queries=25)
    summaries = [ResourceSummary.from_store(s, cfg) for s in stores]
    dim_probs = measured_dimension_probabilities(summaries, queries)
    p_leaf = leaf_match_probability_from_dims(
        [dim_probs[a] for a in queries[0].attributes]
    )
    model = expected_contacts(QueryCostParams(NODES, 3, p_leaf))
    measured = np.mean([
        system.search(SearchRequest(qq, client_node=0)).servers_contacted
        for qq in queries
    ])
    print(f"per-dimension match probabilities: "
          f"{ {k: round(v, 2) for k, v in sorted(dim_probs.items())} }")
    print(f"leaf match probability (product): {p_leaf:.3f}")
    print(f"expected contacts (model): {model:.1f}  |  measured: {measured:.1f}")

    # 4. three-way response times ---------------------------------------------
    print("\n=== response time: ROADS vs SWORD vs central ===")
    sword = SwordSystem(
        SwordConfig(num_nodes=NODES, records_per_node=RECORDS, seed=SEED),
        stores,
    )
    central = CentralSystem(CentralConfig(num_nodes=NODES, seed=SEED), stores)
    responders = {
        "ROADS": RoadsResponder(system),
        "SWORD": SwordResponder(sword),
        "central": CentralResponder(central),
    }
    for name, responder in responders.items():
        times = [
            responder.respond(qq, 0).response_seconds * 1000
            for qq in queries[:10]
        ]
        print(f"  {name:>8}: mean {np.mean(times):7.1f} ms  "
              f"p90 {np.percentile(times, 90):7.1f} ms")

    # 5. a mini sweep, charted ----------------------------------------------------
    print("\n=== figure 3 shape (mini sweep) ===")
    rows = fig3_latency_vs_nodes(
        ExperimentSettings(num_nodes=64, records_per_node=100,
                           num_queries=25, runs=1, seed=SEED),
        node_sweep=(32, 64, 96, 128),
    )
    print(ascii_chart(
        rows, "nodes", ["roads_latency_ms", "sword_latency_ms"],
        width=48, height=10,
        title="latency (ms) vs nodes — ROADS flattens, SWORD climbs",
    ))


if __name__ == "__main__":
    main()
