#!/usr/bin/env python
"""Federated stream-processing sites sharing sensor data sources.

The paper's motivating deployment (Distributed System S / CLASP): several
stream-processing sites, each run by a different organization, federate
so any site can discover data sources — cameras, microphones, GPS feeds —
owned by the others, *without* the owners exporting their raw source
catalogs.

This example shows the voluntary-sharing machinery end to end:

* a realistic mixed schema (categorical + numeric attributes);
* per-site catalogs with site-specific sensor mixes;
* tiered sharing policies: a partner consortium sees everything, other
  sites only see sources flagged as publicly shareable;
* multi-dimensional discovery queries ("MPEG2 cameras above 100 kbps")
  answered differently depending on who asks.

Run:  python examples/stream_federation.py
"""

import numpy as np

from repro import (
    EqualsPredicate,
    Query,
    RangePredicate,
    RecordStore,
    RoadsConfig,
    RoadsSystem,
    SearchRequest,
    TieredPolicy,
)
from repro.query import greater_than
from repro.records import stream_processing_schema

SITES = 12
SOURCES_PER_SITE = 120
SEED = 7


def build_site_catalog(rng, schema, site):
    """One site's sensor catalog, with a site-specific flavour."""
    n = SOURCES_PER_SITE
    # Each site specializes: mostly cameras, or mostly audio, etc.
    specialities = [
        ("camera", "MPEG2"),
        ("camera", "H264"),
        ("microphone", "PCM"),
        ("gps", "JSON"),
    ]
    main_type, main_enc = specialities[site % len(specialities)]
    types = np.where(
        rng.random(n) < 0.7, main_type,
        rng.choice(schema["type"].categories, n),
    ).tolist()
    encodings = np.where(
        rng.random(n) < 0.6, main_enc,
        rng.choice(schema["encoding"].categories, n),
    ).tolist()
    numeric = np.column_stack(
        [
            rng.gamma(2.0, 150.0, n).clip(1, 10_000),  # rate_kbps
            rng.choice([320, 640, 1280, 1920, 3840], n),  # resolution_x
            rng.choice([240, 480, 720, 1080, 2160], n),  # resolution_y
            rng.beta(8, 2, n),  # uptime
            rng.uniform(0, 100, n),  # cost
        ]
    )
    return RecordStore.from_arrays(
        schema, numeric, [types, encodings], owner=f"owner-{site}"
    )


def main() -> None:
    rng = np.random.default_rng(SEED)
    schema = stream_processing_schema()
    catalogs = [build_site_catalog(rng, schema, s) for s in range(SITES)]

    system = RoadsSystem.build(
        RoadsConfig(
            num_nodes=SITES,
            records_per_node=SOURCES_PER_SITE,
            max_children=3,
            seed=SEED,
        ),
        catalogs,
    )
    print(f"federation: {SITES} sites, hierarchy of {system.levels} levels")

    # Voluntary sharing: every site shares freely with the consortium,
    # but only cheap (cost <= 20), reliable (uptime >= 0.9) sources with
    # anyone else.
    consortium = frozenset({f"site-{i}" for i in range(0, SITES, 2)})
    for site in range(SITES):
        system.set_policy(
            f"owner-{site}",
            TieredPolicy(
                partners=consortium,
                public_predicate=lambda s: (
                    s.mask_range("cost", 0.0, 20.0)
                    & s.mask_range("uptime", 0.9, 1.0)
                ),
            ),
        )

    # Discovery: the paper's running example query.
    query = Query.of(
        EqualsPredicate("type", "camera"),
        EqualsPredicate("encoding", "MPEG2"),
        greater_than("rate_kbps", 100.0, 10_000.0),
    )
    print(f"\nquery: {query}")

    for requester in ("site-0", "site-1", "anonymous"):
        outcome = system.search(
            SearchRequest(
                query.with_requester(requester), collect_records=True
            )
        ).outcome
        records = outcome.matched_records()
        n = len(records) if records is not None else 0
        tag = "consortium" if requester in consortium else "public view"
        print(
            f"  as {requester:<10} ({tag:>11}): {n:3d} sources, "
            f"latency {outcome.latency * 1000:6.1f} ms, "
            f"{outcome.servers_contacted} sites contacted"
        )
        if records is not None and requester not in consortium and n:
            # Public view honours the owners' restrictions.
            assert max(records.numeric_column("cost")) <= 20.0
            assert min(records.numeric_column("uptime")) >= 0.9

    # The same owner presents different views to different parties —
    # exactly the behaviour DHT-based discovery cannot provide, since it
    # would require exporting raw records to arbitrary hash owners.
    full = system.search(
        SearchRequest(query.with_requester("site-0"))
    ).total_matches
    public = system.search(
        SearchRequest(query.with_requester("anonymous"))
    ).total_matches
    print(f"\nconsortium sees {full} sources; the public sees {public}. "
          "Owners keep control without becoming undiscoverable.")


if __name__ == "__main__":
    main()
